"""The truly distributed (checkerboard) strategy — Example 4 /
Proposition 3.

"Truly distributed name server.  All nodes are used equally often as
rendez-vous node."  The rendezvous matrix is tiled with ~sqrt(n) × sqrt(n)
blocks, each assigned one distinct node, giving ``#P(i) ≈ #Q(j) ≈ sqrt(n)``,
``m(n) ≈ 2·sqrt(n)`` and a perfectly balanced load ``k_i ≈ n``.
"""

from __future__ import annotations

import math
from typing import FrozenSet, Hashable, List, Optional, Sequence

from ..core.bounds import checkerboard_grid
from ..core.exceptions import StrategyError
from ..core.types import Port
from .base import UniverseStrategy


class CheckerboardStrategy(UniverseStrategy):
    """Example 4's balanced, truly distributed strategy for any universe.

    The universe is ordered (the ``order`` argument, defaulting to sorted by
    ``repr``) and the Proposition 3 checkerboard grid built over it; then

    * ``P(i)`` = the block representatives of row ``i`` (one per block
      column),
    * ``Q(j)`` = the block representatives of column ``j`` (one per block
      row),

    whose intersection is exactly the representative of the block containing
    ``(i, j)`` — a single node, so the strategy is optimal (no redundancy,
    no waste).
    """

    name = "checkerboard"

    def __init__(
        self,
        universe,
        order: Optional[Sequence[Hashable]] = None,
    ) -> None:
        super().__init__(universe)
        if order is None:
            ordered = sorted(self._universe, key=repr)
        else:
            ordered = list(order)
            if frozenset(ordered) != self._universe:
                raise StrategyError(
                    "order must be a permutation of the universe"
                )
        self._ordered: List[Hashable] = ordered
        self._index = {node: position for position, node in enumerate(ordered)}
        self._grid = checkerboard_grid(ordered)
        n = len(ordered)
        self._post_sets = {
            node: frozenset(self._grid[self._index[node]][j] for j in range(n))
            for node in ordered
        }
        self._query_sets = {
            node: frozenset(self._grid[i][self._index[node]] for i in range(n))
            for node in ordered
        }

    @property
    def block_side(self) -> int:
        """The side length of the checkerboard blocks (≈ sqrt(n))."""
        return max(1, int(round(math.sqrt(len(self._ordered)))))

    def rendezvous_node(self, server: Hashable, client: Hashable) -> Hashable:
        """The single rendezvous node of a pair."""
        self._require_member(server)
        self._require_member(client)
        return self._grid[self._index[server]][self._index[client]]

    def post_set(self, node: Hashable, port: Optional[Port] = None) -> FrozenSet:
        self._require_member(node)
        return self._post_sets[node]

    def query_set(self, node: Hashable, port: Optional[Port] = None) -> FrozenSet:
        self._require_member(node)
        return self._query_sets[node]
