"""Store-and-forward network simulation substrate.

This subpackage implements everything the paper assumes of the underlying
network: an undirected communication graph, per-node routing tables, per-node
posting caches, spanning-tree broadcast, message-pass (hop) accounting, a
logical clock, and fault injection.
"""

from .broadcast import DeliveryOutcome, flood, multicast, unicast
from .cache import BoundedCache, ExpiringCache, NodeCache
from .delivery import DeliveryPlanner, plan_hit_rates
from .events import EventLoop
from .faults import (
    FaultEvent,
    FaultPlan,
    FaultTimeline,
    correlated_failures,
    crash_recover_waves,
    link_flaps,
    max_tolerated_faults,
    random_fault_plan,
    region_partition,
    surviving_graph,
)
from .graph import Graph, complete_graph
from .node import Node
from .relay import (
    LoadReport,
    RelayRoute,
    compare_direct_vs_relay,
    direct_route,
    measure_load,
    two_phase_route,
)
from .routing import RoutingTable, multicast_tree_cost, route_cost
from .simulator import Network, QueryOutcome
from .stats import CONTROL, PAYLOAD, POST, QUERY, REPLY, MessageStats

__all__ = [
    "BoundedCache",
    "CONTROL",
    "DeliveryOutcome",
    "DeliveryPlanner",
    "EventLoop",
    "ExpiringCache",
    "FaultEvent",
    "FaultPlan",
    "FaultTimeline",
    "Graph",
    "LoadReport",
    "MessageStats",
    "Network",
    "Node",
    "NodeCache",
    "PAYLOAD",
    "POST",
    "QUERY",
    "QueryOutcome",
    "REPLY",
    "RelayRoute",
    "RoutingTable",
    "compare_direct_vs_relay",
    "complete_graph",
    "correlated_failures",
    "crash_recover_waves",
    "direct_route",
    "flood",
    "link_flaps",
    "measure_load",
    "max_tolerated_faults",
    "multicast",
    "multicast_tree_cost",
    "plan_hit_rates",
    "random_fault_plan",
    "region_partition",
    "route_cost",
    "surviving_graph",
    "two_phase_route",
    "unicast",
]
