"""The store-and-forward network simulator.

:class:`Network` binds together the communication graph, per-node caches,
routing tables, the logical clock, fault injection and message-pass
accounting.  Match-making strategies and the service model run *on top of* a
``Network``: they decide which nodes to address; the network delivers the
messages and charges the hops.

Delivery modes
--------------
``unicast``
    each addressed node gets its own point-to-point message routed along a
    shortest path (cost = sum of distances);
``multicast``
    one message flows down a BFS tree covering the addressed nodes
    (cost = number of tree edges — the paper's spanning-tree broadcast);
``ideal``
    every addressed node costs exactly one hop, which models the complete
    network of section 2 regardless of the underlying topology.  This mode is
    what the lower-bound experiments use, because the paper's ``m(i,j) =
    #P(i) + #Q(j)`` applies to complete networks.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, List, Optional, Tuple

from ..core.exceptions import NodeDownError, UnknownNodeError
from ..core.types import Address, Port, PostRecord
from .broadcast import DeliveryOutcome, flood
from .cache import NodeCache
from .delivery import DeliveryPlanner
from .events import EventLoop
from .faults import CRASH_NODE, LINK_DOWN, LINK_UP, RECOVER_NODE, FaultEvent, FaultPlan
from .graph import Graph
from .node import Node
from ..obs.profile import ROUTING_TABLE, phase
from ..obs.spans import active_tracer
from .routing import RoutingTable
from .stats import POST, QUERY, REPLY, PAYLOAD, MessageStats

#: Delivery modes accepted by :meth:`Network.deliver`.
DELIVERY_MODES = ("unicast", "multicast", "ideal")


@dataclass(frozen=True)
class QueryOutcome:
    """Result of querying a set of nodes for a port."""

    records: Tuple[PostRecord, ...]
    responding_nodes: FrozenSet[Hashable]
    queried_nodes: FrozenSet[Hashable]
    query_hops: int
    reply_hops: int

    @property
    def found(self) -> bool:
        """Whether any queried node knew an address for the port."""
        return bool(self.records)

    def freshest(self) -> Optional[PostRecord]:
        """The freshest record found, or ``None``."""
        if not self.records:
            return None
        return max(self.records, key=lambda r: (r.timestamp, repr(r.address)))


class Network:
    """A simulated store-and-forward network.

    Parameters
    ----------
    graph:
        The communication graph.  It is copied defensively so later mutation
        of the argument does not affect the simulator.
    delivery_mode:
        Default delivery mode for post/query traffic (see module docstring).
    cache_factory:
        Callable producing the cache for each node; defaults to unbounded
        :class:`NodeCache`.
    seed:
        Seed of the network's private random generator (used only by
        randomised helpers such as random node selection).
    """

    def __init__(
        self,
        graph: Graph,
        delivery_mode: str = "multicast",
        cache_factory=NodeCache,
        seed: int = 0,
    ) -> None:
        if delivery_mode not in DELIVERY_MODES:
            raise ValueError(
                f"unknown delivery mode {delivery_mode!r}; "
                f"expected one of {DELIVERY_MODES}"
            )
        self._graph = graph.copy()
        self._delivery_mode = delivery_mode
        self._seed = seed
        self._nodes: Dict[Hashable, Node] = {
            node_id: Node(node_id, cache_factory()) for node_id in self._graph.nodes
        }
        with phase(ROUTING_TABLE):
            self._routing = RoutingTable(self._graph)
        self._faults = FaultPlan()
        self._stats = MessageStats()
        # All routing/planning work for every delivery mode goes through the
        # planner, which memoizes per fault-plan revision.
        self._planner = DeliveryPlanner(
            self._graph,
            self._routing,
            self._faults,
            self._stats,
            self.node_is_up,
        )
        self._clock = EventLoop()
        self._rng = random.Random(seed)
        self._timestamps = itertools.count(1)
        #: Optional message tap (repro.simtime's timed overlay).  The tap
        #: only *observes* deliveries; it never changes what is delivered,
        #: which is the digest-neutrality contract of timed runs.
        self._tap = None

    # -- structure ----------------------------------------------------------

    @property
    def graph(self) -> Graph:
        """The (full, fault-free) communication graph."""
        return self._graph

    @property
    def routing(self) -> RoutingTable:
        """Routing tables over the fault-free graph."""
        return self._routing

    @property
    def planner(self) -> DeliveryPlanner:
        """The fault-aware delivery planner (single source of routing
        truth)."""
        return self._planner

    @property
    def stats(self) -> MessageStats:
        """Cumulative message-pass statistics."""
        return self._stats

    @property
    def clock(self) -> EventLoop:
        """The logical clock / event loop."""
        return self._clock

    @property
    def faults(self) -> FaultPlan:
        """The current fault plan."""
        return self._faults

    @property
    def rng(self) -> random.Random:
        """The network's private random generator."""
        return self._rng

    @property
    def delivery_mode(self) -> str:
        """The default delivery mode."""
        return self._delivery_mode

    @property
    def size(self) -> int:
        """Number of nodes ``n``."""
        return self._graph.node_count

    def node(self, node_id: Hashable) -> Node:
        """The :class:`Node` object for ``node_id``."""
        try:
            return self._nodes[node_id]
        except KeyError:
            raise UnknownNodeError(node_id) from None

    def nodes(self) -> List[Node]:
        """All node objects."""
        return list(self._nodes.values())

    def node_ids(self) -> List[Hashable]:
        """All node identifiers."""
        return list(self._nodes)

    def next_timestamp(self) -> int:
        """A fresh, strictly increasing timestamp for postings."""
        return next(self._timestamps)

    # -- fault injection ------------------------------------------------------

    def crash_node(self, node_id: Hashable) -> None:
        """Crash a node: it loses its cache and stops handling messages."""
        self.node(node_id).crash()
        self._faults.crash_node(node_id)

    def recover_node(self, node_id: Hashable) -> None:
        """Recover a crashed node (with an empty cache)."""
        self.node(node_id).recover()
        self._faults.recover_node(node_id)

    def fail_link(self, u: Hashable, v: Hashable) -> None:
        """Fail the link between ``u`` and ``v``."""
        if not self._graph.has_edge(u, v):
            raise UnknownNodeError((u, v))
        self._faults.fail_link(u, v)

    def restore_link(self, u: Hashable, v: Hashable) -> None:
        """Restore a failed link."""
        self._faults.restore_link(u, v)

    def apply_fault(self, event: FaultEvent) -> None:
        """Apply one :class:`~repro.network.faults.FaultEvent` to this
        network.

        The execution primitive for fault timelines: each event moves the
        fault plan (and so the planner revision) exactly as the equivalent
        direct call would.
        """
        if event.kind == CRASH_NODE:
            self.crash_node(event.subject[0])
        elif event.kind == RECOVER_NODE:
            self.recover_node(event.subject[0])
        elif event.kind == LINK_DOWN:
            self.fail_link(*event.subject)
        elif event.kind == LINK_UP:
            self.restore_link(*event.subject)
        else:  # pragma: no cover - FaultEvent validates kinds
            raise ValueError(f"unknown fault event kind {event.kind!r}")

    def node_is_up(self, node_id: Hashable) -> bool:
        """Whether ``node_id`` is currently up."""
        return self.node(node_id).alive and self._faults.node_is_up(node_id)

    def up_nodes(self) -> List[Hashable]:
        """Identifiers of all currently-up nodes."""
        return [node_id for node_id in self._nodes if self.node_is_up(node_id)]

    def reset_for_reuse(self) -> None:
        """Restore pristine state so another run can share this network.

        Scenario matrices run many cells over the same topology; rebuilding
        the network per cell repays the O(n²) all-pairs routing construction
        every time.  Resetting instead keeps the graph, the static routing
        table and the delivery planner (whose fault-free caches stay warm —
        plans are pure functions of graph + fault revision) while restoring
        everything a run observes: node liveness and caches, the fault plan,
        message statistics, timestamps, the clock and the private generator.
        A reset network is indistinguishable from a freshly built one to the
        workload driver, which is what keeps shared-network runs replayable.
        """
        for node in self._nodes.values():
            if not node.alive:
                node.recover()
            node.cache.clear()
        self._faults.clear()  # no revision bump when already fault-free
        self._stats.reset()
        self._clock = EventLoop()
        self._rng = random.Random(self._seed)
        self._timestamps = itertools.count(1)
        self._tap = None

    def reset_to_cold(self) -> None:
        """:meth:`reset_for_reuse`, plus dropping the planner's warm caches.

        Plan-cache hit/miss counters are part of every cell's reported
        results, so a network recycled *across* matrix runs (the warm
        worker pool) must be counter-indistinguishable from a freshly
        built one: same graph and static routing table (the expensive
        part, which records no plan events fault-free), but completely
        cold memoized plans, trees and surviving tables.
        """
        self.reset_for_reuse()
        self._planner.clear_caches()

    # -- message tap ----------------------------------------------------------

    def attach_tap(self, tap) -> None:
        """Install a message tap (one at a time).

        The tap sees every delivery fan-out (``on_delivery``), reply burst
        (``on_replies``) and payload message (``on_payload``) as pure
        observations — see :class:`repro.simtime.binding.TimedOverlay`.
        """
        if self._tap is not None:
            raise RuntimeError("a message tap is already attached")
        self._tap = tap

    def detach_tap(self) -> None:
        """Remove the message tap (idempotent)."""
        self._tap = None

    # -- message delivery -----------------------------------------------------

    def _active_faults(self) -> Optional[FaultPlan]:
        return self._faults if self._faults.fault_count else None

    def _surviving_routing(self) -> RoutingTable:
        """Routing tables honouring the current fault plan (cached)."""
        return self._planner.routing_table()

    def deliver(
        self,
        source: Hashable,
        destinations: Iterable[Hashable],
        category: str,
        mode: Optional[str] = None,
    ) -> DeliveryOutcome:
        """Deliver a message from ``source`` to each destination.

        Returns which destinations were reached and charges the hops to
        ``category`` in :attr:`stats`.  Crashed destinations and destinations
        cut off by failed links count as unreachable.
        """
        if source not in self._graph:
            raise UnknownNodeError(source)
        if not self.node_is_up(source):
            raise NodeDownError(source)
        mode = mode or self._delivery_mode
        if mode not in DELIVERY_MODES:  # pragma: no cover - guarded in ctor
            raise ValueError(f"unknown delivery mode {mode!r}")
        if isinstance(destinations, frozenset):
            # The hot path: the match-maker's memoized P/Q sets arrive as
            # frozensets, so the planner key needs no copying at all.
            targets = destinations
            message_count = len(destinations)
            outcome = self._planner.plan(source, targets, mode)
        else:
            destinations = list(destinations)
            message_count = len(destinations)
            targets = frozenset(destinations)
            if len(targets) == len(destinations):
                outcome = self._planner.plan(source, targets, mode)
            else:
                # Duplicate destinations: charge each occurrence, exactly as
                # per-message delivery would (plans dedup, so bypass them).
                outcome = self._deliver_with_duplicates(source, destinations, mode)

        # Drop destinations whose node object crashed without a fault-plan
        # entry (defensive; crash_node keeps them in sync).
        dead = frozenset(
            d for d in outcome.reached if d != source and not self.node_is_up(d)
        )
        if dead:
            outcome = DeliveryOutcome(
                outcome.reached - dead, outcome.hops, outcome.unreachable | dead
            )
        self._stats.record(category, outcome.hops, message_count=message_count)
        if message_count == len(targets):
            delivered = len(outcome.reached)
        else:
            # Duplicate destinations: every occurrence counts separately, so
            # the conservation law sent == delivered + dropped still holds.
            delivered = sum(1 for d in destinations if d in outcome.reached)
        self._stats.record_delivery(category, delivered, message_count - delivered)
        self._stats.record_load(outcome.reached)
        if self._tap is not None:
            self._tap.on_delivery(source, outcome.reached, category, mode)
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "deliver",
                category=category,
                mode=mode,
                hops=outcome.hops,
                reached=delivered,
                dropped=message_count - delivered,
            )
        return outcome

    def _deliver_with_duplicates(
        self, source: Hashable, destinations: List[Hashable], mode: str
    ) -> DeliveryOutcome:
        """Per-occurrence delivery for destination lists with duplicates.

        ``multicast`` has set semantics anyway; ``ideal`` and ``unicast``
        charge every occurrence its own hops.  Routing still comes from the
        planner's shared tables — nothing is rebuilt per message.
        """
        if mode == "multicast":
            return self._planner.plan(source, frozenset(destinations), mode)
        distances = (
            self._planner.routing_table().distance_map(source)
            if mode == "unicast"
            else None
        )
        reached = set()
        unreachable = set()
        hops = 0
        for destination in destinations:
            if destination == source:
                reached.add(destination)
                continue
            if mode == "ideal":
                if destination not in self._graph:
                    raise UnknownNodeError(destination)
                if self.node_is_up(destination):
                    reached.add(destination)
                    hops += 1
                else:
                    unreachable.add(destination)
            else:
                distance = distances.get(destination)
                if distance is None:
                    unreachable.add(destination)
                else:
                    hops += distance
                    reached.add(destination)
        return DeliveryOutcome(frozenset(reached), hops, frozenset(unreachable))

    def broadcast(self, source: Hashable, category: str) -> DeliveryOutcome:
        """Flood the whole (surviving) network from ``source``."""
        if not self.node_is_up(source):
            raise NodeDownError(source)
        outcome = flood(self._graph, source, self._active_faults())
        self._stats.record(category, outcome.hops, message_count=1)
        return outcome

    # -- match-making primitives ----------------------------------------------

    def post(
        self,
        server_node: Hashable,
        port: Port,
        targets: Iterable[Hashable],
        server_id: str = "",
        mode: Optional[str] = None,
        address: Optional[Address] = None,
    ) -> DeliveryOutcome:
        """Post ``(port, address-of-server_node)`` at each target node.

        Only targets actually reached store the record; this is what makes a
        subsequent query fail if, e.g., all rendezvous nodes crashed.
        """
        record = PostRecord(
            port=port,
            address=address if address is not None else Address(server_node),
            timestamp=self.next_timestamp(),
            server_id=server_id or f"server@{server_node}",
        )
        outcome = self.deliver(server_node, targets, POST, mode=mode)
        for target in outcome.reached:
            self._nodes[target].accept_post(record)
        return outcome

    def unpost(
        self,
        server_node: Hashable,
        port: Port,
        targets: Iterable[Hashable],
        server_id: str = "",
        mode: Optional[str] = None,
    ) -> DeliveryOutcome:
        """Withdraw a posting from each reachable target node."""
        outcome = self.deliver(server_node, targets, POST, mode=mode)
        sid = server_id or f"server@{server_node}"
        for target in outcome.reached:
            self._nodes[target].forget_server(port, sid)
        return outcome

    def query(
        self,
        client_node: Hashable,
        port: Port,
        targets: Iterable[Hashable],
        mode: Optional[str] = None,
        collect_all: bool = False,
    ) -> QueryOutcome:
        """Query each target node for ``port`` and collect replies.

        Reply hops are charged separately (category ``reply``): each node that
        has a matching record sends one reply routed back to the client (one
        hop in ``ideal`` mode, shortest-path distance otherwise).
        """
        outcome = self.deliver(client_node, targets, QUERY, mode=mode)
        records: List[PostRecord] = []
        responders: List[Hashable] = []
        reply_hops = 0
        lost_replies = 0
        mode = mode or self._delivery_mode
        reply_table = self._surviving_routing() if mode != "ideal" else None
        for target in outcome.reached:
            node = self._nodes[target]
            if collect_all:
                found = node.answer_query_all(port)
            else:
                record = node.answer_query(port)
                found = [record] if record else []
            if not found:
                continue
            if target != client_node:
                if mode == "ideal":
                    reply_hops += 1
                elif reply_table.has_route(target, client_node):
                    reply_hops += reply_table.distance(target, client_node)
                else:
                    # The reply cannot come back; this responder contributes
                    # nothing (its records stay out — other responders may
                    # hold equal records, which must survive).  The reply was
                    # still sent, so it counts as sent-and-dropped.
                    lost_replies += 1
                    continue
            records.extend(found)
            responders.append(target)
        self._stats.record(
            REPLY, reply_hops, message_count=len(responders) + lost_replies
        )
        self._stats.record_delivery(REPLY, len(responders), lost_replies)
        if self._tap is not None:
            self._tap.on_replies(responders, client_node, mode)
        tracer = active_tracer()
        if tracer is not None:
            tracer.event(
                "route",
                category=REPLY,
                hops=reply_hops,
                responders=len(responders),
                lost=lost_replies,
            )
        return QueryOutcome(
            records=tuple(records),
            responding_nodes=frozenset(responders),
            queried_nodes=frozenset(outcome.reached),
            query_hops=outcome.hops,
            reply_hops=reply_hops,
        )

    def send_payload(self, source: Hashable, destination: Hashable) -> int:
        """Send an application message (request/reply) point-to-point.

        Returns the hop count, charged to the ``payload`` category.  Raises
        :class:`NoRouteError` via the routing table when the destination is
        unreachable.
        """
        if not self.node_is_up(source):
            raise NodeDownError(source)
        if not self.node_is_up(destination):
            raise NodeDownError(destination)
        table = self._surviving_routing()
        hops = 0 if source == destination else table.distance(source, destination)
        self._stats.record(PAYLOAD, hops, message_count=1)
        self._stats.record_delivery(PAYLOAD, 1, 0)
        if self._tap is not None:
            self._tap.on_payload(source, destination)
        return hops

    def cache_sizes(self) -> Dict[Hashable, int]:
        """Current cache size of every node."""
        return {node_id: node.cache_size() for node_id, node in self._nodes.items()}

    def max_cache_size(self) -> int:
        """The largest cache in the network (the paper's cache-size metric)."""
        sizes = self.cache_sizes()
        return max(sizes.values(), default=0)

    def reset_stats(self) -> None:
        """Zero the message-pass counters."""
        self._stats.reset()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Network(n={self.size}, mode={self._delivery_mode!r}, "
            f"hops={self._stats.total_hops})"
        )
