"""Routing tables for store-and-forward networks.

Section 3 of the paper assumes "each node has a table containing the names of
all other nodes together with the minimum cost to reach them and the neighbor
at which the minimum cost path starts."  :class:`RoutingTable` is exactly that
table, built from breadth-first search (all channels cost one hop).

The module also implements *reverse-path forwarding* beams (section 4): a
message of a given hop budget is forwarded along arcs that the routing tables
would use in the reverse direction, simulating "sending messages along a
straight line" in an arbitrary point-to-point network.
"""

from __future__ import annotations

import random
from collections import deque
from types import MappingProxyType
from typing import Dict, Hashable, List, Mapping, Sequence

from ..core.exceptions import NoRouteError, UnknownNodeError
from .graph import Graph


class RoutingTable:
    """Per-source next-hop and distance tables for a graph.

    The table is computed lazily per source node and cached; building it for
    every node of an ``n``-node graph costs ``O(n * (n + e))`` time overall.
    """

    def __init__(self, graph: Graph) -> None:
        self._graph = graph
        self._next_hop: Dict[Hashable, Dict[Hashable, Hashable]] = {}
        self._distance: Dict[Hashable, Dict[Hashable, int]] = {}

    @property
    def graph(self) -> Graph:
        """The graph this table routes over."""
        return self._graph

    def invalidate(self) -> None:
        """Drop all cached tables (call after the graph changes)."""
        self._next_hop.clear()
        self._distance.clear()

    def _build(self, source: Hashable) -> None:
        if source not in self._graph:
            raise UnknownNodeError(source)
        next_hop: Dict[Hashable, Hashable] = {source: source}
        distance: Dict[Hashable, int] = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbour in sorted(self._graph.neighbours(node), key=repr):
                if neighbour not in distance:
                    distance[neighbour] = distance[node] + 1
                    # First hop from `source` towards `neighbour`:
                    next_hop[neighbour] = (
                        neighbour if node == source else next_hop[node]
                    )
                    queue.append(neighbour)
        self._next_hop[source] = next_hop
        self._distance[source] = distance

    def _tables_for(self, source: Hashable):
        if source not in self._next_hop:
            self._build(source)
        return self._next_hop[source], self._distance[source]

    def next_hop(self, source: Hashable, destination: Hashable) -> Hashable:
        """The neighbour of ``source`` on a shortest path to
        ``destination``."""
        hops, _ = self._tables_for(source)
        if destination not in hops:
            if destination not in self._graph:
                raise UnknownNodeError(destination)
            raise NoRouteError(source, destination)
        return hops[destination]

    def distance(self, source: Hashable, destination: Hashable) -> int:
        """Hop distance between ``source`` and ``destination``."""
        _, dist = self._tables_for(source)
        if destination not in dist:
            if destination not in self._graph:
                raise UnknownNodeError(destination)
            raise NoRouteError(source, destination)
        return dist[destination]

    def distance_map(self, source: Hashable) -> Mapping[Hashable, int]:
        """The full distance table from ``source``.

        A read-only view of the reachable set: ``destination in map`` iff a
        route exists, ``map[destination]`` is the hop distance.  Bulk
        consumers (the delivery planner) use this to plan a whole target
        set with one dict lookup per destination instead of one
        exception-guarded :meth:`distance` call each.
        """
        _, dist = self._tables_for(source)
        return MappingProxyType(dist)

    def has_route(self, source: Hashable, destination: Hashable) -> bool:
        """Whether a route exists."""
        try:
            self.distance(source, destination)
            return True
        except (NoRouteError, UnknownNodeError):
            return False

    def shortest_path(
        self, source: Hashable, destination: Hashable
    ) -> List[Hashable]:
        """A shortest path from ``source`` to ``destination``, inclusive."""
        path = [source]
        current = source
        # Walk next-hop pointers; each step strictly decreases the remaining
        # distance so the loop terminates in at most `distance` iterations.
        while current != destination:
            current = self.next_hop(current, destination)
            path.append(current)
        return path

    def eccentricity(self, source: Hashable) -> int:
        """Maximum distance from ``source`` to any other node."""
        _, dist = self._tables_for(source)
        return max(dist.values(), default=0)

    def reverse_path_beam(
        self,
        origin: Hashable,
        length: int,
        rng: random.Random,
    ) -> List[Hashable]:
        """Send a "beam" of ``length`` hops away from ``origin``.

        Implements the reverse-path-forwarding trick of section 4: the first
        hop is a uniformly random outgoing arc; every subsequent node forwards
        the message on an arc that *it would not use to route back to the
        origin*, i.e. an arc leading strictly away from the origin when one
        exists, so the beam behaves like a straight line.  When every arc
        leads back towards the origin the beam stops early (it has hit the
        "edge" of the network).

        Returns the list of nodes visited, excluding the origin.
        """
        if origin not in self._graph:
            raise UnknownNodeError(origin)
        if length < 0:
            raise ValueError("beam length must be non-negative")
        visited: List[Hashable] = []
        current = origin
        for _ in range(length):
            neighbours = sorted(self._graph.neighbours(current), key=repr)
            if not neighbours:
                break
            origin_distance = self.distance(origin, current)
            # Prefer arcs that increase the distance from the origin (moving
            # "away"); fall back to same-distance arcs; never step back unless
            # nothing else exists.
            away = [
                v for v in neighbours if self.distance(origin, v) > origin_distance
            ]
            level = [
                v
                for v in neighbours
                if self.distance(origin, v) == origin_distance and v != current
            ]
            pool: Sequence[Hashable]
            if away:
                pool = away
            elif level:
                pool = level
            else:
                pool = neighbours
            current = rng.choice(list(pool))
            visited.append(current)
        return visited


def path_cost(table: RoutingTable, path: Sequence[Hashable]) -> int:
    """Number of message passes needed to walk ``path`` (``len(path) - 1``)."""
    if not path:
        return 0
    return len(path) - 1


def route_cost(
    table: RoutingTable, source: Hashable, destinations: Sequence[Hashable]
) -> int:
    """Total hops to send one point-to-point message from ``source`` to each
    destination individually (no multicast sharing).
    """
    total = 0
    for destination in destinations:
        if destination == source:
            continue
        total += table.distance(source, destination)
    return total


def multicast_tree_cost(
    graph: Graph, source: Hashable, destinations: Sequence[Hashable]
) -> int:
    """Hops to reach ``destinations`` from ``source`` along a BFS tree.

    When the addressed set induces a connected subgraph containing the source,
    this equals ``#destinations`` minus (1 if the source is a destination),
    matching the paper's claim that broadcasting over spanning trees makes
    ``m(i,j)`` equal to the number of addressed nodes (section 2.3.5).  In
    general it is the number of tree edges that must carry the message.
    """
    targets = {d for d in destinations if d != source}
    if not targets:
        return 0
    parent = graph.spanning_tree(source)
    needed_edges = set()
    for target in targets:
        if target not in parent:
            raise NoRouteError(source, target)
        node = target
        while node != source:
            needed_edges.add(frozenset((node, parent[node])))
            node = parent[node]
    return len(needed_edges)
