"""Message-pass accounting.

"A message pass or hop consists of the sending of a message from one node to
one of its direct neighbors" (section 2.1).  Every simulator operation charges
its hops to a :class:`MessageStats` instance, broken down by category so that
experiments can separate posting, querying, replying and payload traffic.

Each counter family is a :class:`~repro.obs.registry.CounterMap` — a dict
subclass, so every existing read pattern (``stats.hops.get(...)``, direct
indexing, ``dict(...)`` copies) still works, while merge/snapshot/diff
delegate to the one shared implementation instead of six hand-rolled loops.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, Tuple

from ..obs.registry import CounterMap

#: Categories used by the match-making engine.
POST = "post"
QUERY = "query"
REPLY = "reply"
PAYLOAD = "payload"
CONTROL = "control"


@dataclass
class MessageStats:
    """Counters of message passes (hops) and of messages, by category.

    ``node_load`` additionally counts, per node, how many delivered messages
    addressed that node — the operational form of the paper's load-balance
    concern ("the function of name server is distributed evenly").

    ``plan_events`` counts delivery-planner cache activity (``plan_hit``,
    ``plan_miss``, ``tree_hit``, ``tree_miss``, ``route_hit``,
    ``route_miss``).  These are accounting events about the *simulator's*
    work, not simulated traffic: they are excluded from hop/message
    totals and from workload summaries.
    """

    hops: CounterMap = field(default_factory=CounterMap)
    messages: CounterMap = field(default_factory=CounterMap)
    node_load: CounterMap = field(default_factory=CounterMap)
    plan_events: CounterMap = field(default_factory=CounterMap)
    #: Per-destination delivery outcomes by category: a message occurrence is
    #: *delivered* when its destination was reached and *dropped* when the
    #: destination was down or unreachable.  For point-to-point delivery
    #: traffic these obey the conservation law ``sent = delivered + dropped``
    #: (``messages[c] == delivered[c] + dropped[c]``), which the differential
    #: test suite pins for every strategy.
    delivered: CounterMap = field(default_factory=CounterMap)
    dropped: CounterMap = field(default_factory=CounterMap)

    def __post_init__(self) -> None:
        # Plain dicts passed to the constructor (snapshots built from
        # literals, test fixtures) are adopted as counter maps.
        for name in (
            "hops", "messages", "node_load", "plan_events", "delivered",
            "dropped",
        ):
            value = getattr(self, name)
            if not isinstance(value, CounterMap):
                setattr(self, name, CounterMap(value))

    def _families(self) -> Tuple[Tuple[str, CounterMap], ...]:
        return (
            ("hops", self.hops),
            ("messages", self.messages),
            ("node_load", self.node_load),
            ("plan_events", self.plan_events),
            ("delivered", self.delivered),
            ("dropped", self.dropped),
        )

    def record(self, category: str, hop_count: int, message_count: int = 1) -> None:
        """Charge ``hop_count`` hops and ``message_count`` messages to
        ``category``."""
        if hop_count < 0 or message_count < 0:
            raise ValueError("counts must be non-negative")
        self.hops.bump(category, hop_count)
        self.messages.bump(category, message_count)

    def record_delivery(
        self, category: str, delivered: int, dropped: int
    ) -> None:
        """Record per-destination delivery outcomes for ``category``."""
        if delivered < 0 or dropped < 0:
            raise ValueError("counts must be non-negative")
        if delivered:
            self.delivered.bump(category, delivered)
        if dropped:
            self.dropped.bump(category, dropped)

    def record_load(self, nodes: Iterable[Hashable]) -> None:
        """Count one delivered message against each addressed node."""
        for node in nodes:
            self.node_load.bump(node)

    def record_plan_event(self, kind: str, count: int = 1) -> None:
        """Count ``count`` delivery-planner cache events of ``kind``."""
        self.plan_events.bump(kind, count)

    def plan_events_for(self, kind: str) -> int:
        """Planner cache events of ``kind`` recorded so far."""
        return self.plan_events.get(kind, 0)

    def delivered_for(self, category: str) -> int:
        """Message occurrences delivered to their destination."""
        return self.delivered.get(category, 0)

    def dropped_for(self, category: str) -> int:
        """Message occurrences that never reached their destination."""
        return self.dropped.get(category, 0)

    def conservation_violations(
        self, categories: Iterable[str] = (POST, QUERY)
    ) -> Dict[str, Tuple[int, int, int]]:
        """Categories where ``sent != delivered + dropped``.

        Returns ``{category: (sent, delivered, dropped)}`` for every
        violating category — empty means the conservation law holds.  Only
        meaningful for per-destination delivery traffic (post/query by
        default); flood-style broadcast sends one message to many nodes and
        is deliberately out of scope.
        """
        violations = {}
        for category in categories:
            sent = self.messages.get(category, 0)
            delivered = self.delivered.get(category, 0)
            dropped = self.dropped.get(category, 0)
            if sent != delivered + dropped:
                violations[category] = (sent, delivered, dropped)
        return violations

    def load_for(self, node: Hashable) -> int:
        """Delivered messages that addressed ``node``."""
        return self.node_load.get(node, 0)

    def merge(self, other: "MessageStats") -> None:
        """Add another stats object into this one."""
        for name, family in self._families():
            family.merge(getattr(other, name))

    def hops_for(self, category: str) -> int:
        """Hops charged to ``category``."""
        return self.hops.get(category, 0)

    def messages_for(self, category: str) -> int:
        """Messages charged to ``category``."""
        return self.messages.get(category, 0)

    @property
    def total_hops(self) -> int:
        """All hops across categories."""
        return sum(self.hops.values())

    @property
    def total_messages(self) -> int:
        """All messages across categories."""
        return sum(self.messages.values())

    @property
    def match_making_hops(self) -> int:
        """Hops attributable to match-making proper: posting plus querying.

        This is the quantity the paper's ``m(i, j)`` measures (M3).
        """
        return self.hops_for(POST) + self.hops_for(QUERY)

    def snapshot(self) -> "MessageStats":
        """An independent copy of the current counters."""
        return MessageStats(
            **{name: family.snapshot() for name, family in self._families()}
        )

    def diff(self, earlier: "MessageStats") -> "MessageStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        return MessageStats(
            **{
                name: family.diff(getattr(earlier, name))
                for name, family in self._families()
            }
        )

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(category, hops)`` pairs."""
        return iter(self.hops.items())

    def reset(self) -> None:
        """Zero every counter."""
        for _, family in self._families():
            family.clear()
