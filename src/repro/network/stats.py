"""Message-pass accounting.

"A message pass or hop consists of the sending of a message from one node to
one of its direct neighbors" (section 2.1).  Every simulator operation charges
its hops to a :class:`MessageStats` instance, broken down by category so that
experiments can separate posting, querying, replying and payload traffic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, Iterable, Iterator, Tuple


#: Categories used by the match-making engine.
POST = "post"
QUERY = "query"
REPLY = "reply"
PAYLOAD = "payload"
CONTROL = "control"


@dataclass
class MessageStats:
    """Counters of message passes (hops) and of messages, by category.

    ``node_load`` additionally counts, per node, how many delivered messages
    addressed that node — the operational form of the paper's load-balance
    concern ("the function of name server is distributed evenly").

    ``plan_events`` counts delivery-planner cache activity (``plan_hit``,
    ``plan_miss``, ``tree_hit``, ``tree_miss``, ``route_hit``,
    ``route_miss``).  These are accounting events about the *simulator's*
    work, not simulated traffic: they are excluded from hop/message
    totals and from workload summaries.
    """

    hops: Dict[str, int] = field(default_factory=dict)
    messages: Dict[str, int] = field(default_factory=dict)
    node_load: Dict[Hashable, int] = field(default_factory=dict)
    plan_events: Dict[str, int] = field(default_factory=dict)
    #: Per-destination delivery outcomes by category: a message occurrence is
    #: *delivered* when its destination was reached and *dropped* when the
    #: destination was down or unreachable.  For point-to-point delivery
    #: traffic these obey the conservation law ``sent = delivered + dropped``
    #: (``messages[c] == delivered[c] + dropped[c]``), which the differential
    #: test suite pins for every strategy.
    delivered: Dict[str, int] = field(default_factory=dict)
    dropped: Dict[str, int] = field(default_factory=dict)

    def record(self, category: str, hop_count: int, message_count: int = 1) -> None:
        """Charge ``hop_count`` hops and ``message_count`` messages to
        ``category``."""
        if hop_count < 0 or message_count < 0:
            raise ValueError("counts must be non-negative")
        self.hops[category] = self.hops.get(category, 0) + hop_count
        self.messages[category] = self.messages.get(category, 0) + message_count

    def record_delivery(
        self, category: str, delivered: int, dropped: int
    ) -> None:
        """Record per-destination delivery outcomes for ``category``."""
        if delivered < 0 or dropped < 0:
            raise ValueError("counts must be non-negative")
        if delivered:
            self.delivered[category] = (
                self.delivered.get(category, 0) + delivered
            )
        if dropped:
            self.dropped[category] = self.dropped.get(category, 0) + dropped

    def record_load(self, nodes: Iterable[Hashable]) -> None:
        """Count one delivered message against each addressed node."""
        for node in nodes:
            self.node_load[node] = self.node_load.get(node, 0) + 1

    def record_plan_event(self, kind: str, count: int = 1) -> None:
        """Count ``count`` delivery-planner cache events of ``kind``."""
        self.plan_events[kind] = self.plan_events.get(kind, 0) + count

    def plan_events_for(self, kind: str) -> int:
        """Planner cache events of ``kind`` recorded so far."""
        return self.plan_events.get(kind, 0)

    def delivered_for(self, category: str) -> int:
        """Message occurrences delivered to their destination."""
        return self.delivered.get(category, 0)

    def dropped_for(self, category: str) -> int:
        """Message occurrences that never reached their destination."""
        return self.dropped.get(category, 0)

    def conservation_violations(
        self, categories: Iterable[str] = (POST, QUERY)
    ) -> Dict[str, Tuple[int, int, int]]:
        """Categories where ``sent != delivered + dropped``.

        Returns ``{category: (sent, delivered, dropped)}`` for every
        violating category — empty means the conservation law holds.  Only
        meaningful for per-destination delivery traffic (post/query by
        default); flood-style broadcast sends one message to many nodes and
        is deliberately out of scope.
        """
        violations = {}
        for category in categories:
            sent = self.messages.get(category, 0)
            delivered = self.delivered.get(category, 0)
            dropped = self.dropped.get(category, 0)
            if sent != delivered + dropped:
                violations[category] = (sent, delivered, dropped)
        return violations

    def load_for(self, node: Hashable) -> int:
        """Delivered messages that addressed ``node``."""
        return self.node_load.get(node, 0)

    def merge(self, other: "MessageStats") -> None:
        """Add another stats object into this one."""
        for category, count in other.hops.items():
            self.hops[category] = self.hops.get(category, 0) + count
        for category, count in other.messages.items():
            self.messages[category] = self.messages.get(category, 0) + count
        for node, count in other.node_load.items():
            self.node_load[node] = self.node_load.get(node, 0) + count
        for kind, count in other.plan_events.items():
            self.plan_events[kind] = self.plan_events.get(kind, 0) + count
        for category, count in other.delivered.items():
            self.delivered[category] = self.delivered.get(category, 0) + count
        for category, count in other.dropped.items():
            self.dropped[category] = self.dropped.get(category, 0) + count

    def hops_for(self, category: str) -> int:
        """Hops charged to ``category``."""
        return self.hops.get(category, 0)

    def messages_for(self, category: str) -> int:
        """Messages charged to ``category``."""
        return self.messages.get(category, 0)

    @property
    def total_hops(self) -> int:
        """All hops across categories."""
        return sum(self.hops.values())

    @property
    def total_messages(self) -> int:
        """All messages across categories."""
        return sum(self.messages.values())

    @property
    def match_making_hops(self) -> int:
        """Hops attributable to match-making proper: posting plus querying.

        This is the quantity the paper's ``m(i, j)`` measures (M3).
        """
        return self.hops_for(POST) + self.hops_for(QUERY)

    def snapshot(self) -> "MessageStats":
        """An independent copy of the current counters."""
        return MessageStats(
            hops=dict(self.hops),
            messages=dict(self.messages),
            node_load=dict(self.node_load),
            plan_events=dict(self.plan_events),
            delivered=dict(self.delivered),
            dropped=dict(self.dropped),
        )

    def diff(self, earlier: "MessageStats") -> "MessageStats":
        """Counters accumulated since ``earlier`` was snapshotted."""
        hops = {
            category: count - earlier.hops.get(category, 0)
            for category, count in self.hops.items()
        }
        messages = {
            category: count - earlier.messages.get(category, 0)
            for category, count in self.messages.items()
        }
        node_load = {
            node: count - earlier.node_load.get(node, 0)
            for node, count in self.node_load.items()
        }
        plan_events = {
            kind: count - earlier.plan_events.get(kind, 0)
            for kind, count in self.plan_events.items()
        }
        delivered = {
            category: count - earlier.delivered.get(category, 0)
            for category, count in self.delivered.items()
        }
        dropped = {
            category: count - earlier.dropped.get(category, 0)
            for category, count in self.dropped.items()
        }
        return MessageStats(
            hops={k: v for k, v in hops.items() if v},
            messages={k: v for k, v in messages.items() if v},
            node_load={k: v for k, v in node_load.items() if v},
            plan_events={k: v for k, v in plan_events.items() if v},
            delivered={k: v for k, v in delivered.items() if v},
            dropped={k: v for k, v in dropped.items() if v},
        )

    def items(self) -> Iterator[Tuple[str, int]]:
        """Iterate ``(category, hops)`` pairs."""
        return iter(self.hops.items())

    def reset(self) -> None:
        """Zero every counter."""
        self.hops.clear()
        self.messages.clear()
        self.node_load.clear()
        self.plan_events.clear()
        self.delivered.clear()
        self.dropped.clear()
