"""Spanning-tree broadcast and multicast cost models.

The paper charges broadcast/multicast the number of tree edges used: when the
addressed set induces a connected subgraph containing the sender and messages
are broadcast "over spanning trees in these subgraphs, then the number of
message passes m(i,j) equals the number of addressed nodes #P(i)+#Q(j)"
(section 2.3.5).  Otherwise there is a routing overhead.  This module computes
both the reached set and the exact hop count for three delivery modes:

``unicast``
    One point-to-point message per destination, each along a shortest path.
``multicast``
    One copy flows down a BFS tree rooted at the sender, duplicated at branch
    points; the cost is the number of distinct tree edges used.
``flood``
    Full network broadcast along a spanning tree of the (surviving) network —
    the paper's Ω(n) conventional broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, Hashable, Iterable, Optional, Sequence, Set, Tuple

from ..core.exceptions import UnknownNodeError
from .faults import FaultPlan, surviving_graph
from .graph import Graph
from .routing import RoutingTable


@dataclass(frozen=True)
class DeliveryOutcome:
    """Result of delivering a message from one node to a set of targets."""

    reached: FrozenSet[Hashable]
    hops: int
    unreachable: FrozenSet[Hashable]

    @property
    def fully_delivered(self) -> bool:
        """Whether every requested destination was reached."""
        return not self.unreachable


def _effective_graph(graph: Graph, faults: Optional[FaultPlan]) -> Graph:
    if faults is None or faults.fault_count == 0:
        return graph
    return surviving_graph(graph, faults)


def unicast(
    graph: Graph,
    table: RoutingTable,
    source: Hashable,
    destinations: Iterable[Hashable],
    faults: Optional[FaultPlan] = None,
) -> DeliveryOutcome:
    """Deliver one message per destination along shortest surviving paths."""
    if source not in graph:
        raise UnknownNodeError(source)
    effective = _effective_graph(graph, faults)
    if faults is not None and not faults.node_is_up(source):
        targets = frozenset(d for d in destinations if d != source)
        return DeliveryOutcome(frozenset(), 0, targets)
    live_table = table if effective is graph else RoutingTable(effective)
    reached: Set[Hashable] = set()
    unreachable: Set[Hashable] = set()
    hops = 0
    for destination in destinations:
        if destination == source:
            reached.add(destination)
            continue
        if destination not in effective or not live_table.has_route(
            source, destination
        ):
            unreachable.add(destination)
            continue
        hops += live_table.distance(source, destination)
        reached.add(destination)
    return DeliveryOutcome(frozenset(reached), hops, frozenset(unreachable))


def multicast(
    graph: Graph,
    source: Hashable,
    destinations: Iterable[Hashable],
    faults: Optional[FaultPlan] = None,
) -> DeliveryOutcome:
    """Deliver along a BFS tree; cost = number of distinct tree edges used."""
    if source not in graph:
        raise UnknownNodeError(source)
    effective = _effective_graph(graph, faults)
    targets = {d for d in destinations}
    if faults is not None and not faults.node_is_up(source):
        return DeliveryOutcome(frozenset(), 0, frozenset(targets - {source}))
    if source not in effective:
        return DeliveryOutcome(frozenset(), 0, frozenset(targets - {source}))
    parent = effective.spanning_tree(source)
    reached: Set[Hashable] = set()
    unreachable: Set[Hashable] = set()
    edges: Set[FrozenSet[Hashable]] = set()
    for destination in targets:
        if destination == source:
            reached.add(destination)
            continue
        if destination not in parent:
            unreachable.add(destination)
            continue
        node = destination
        while node != source:
            edges.add(frozenset((node, parent[node])))
            node = parent[node]
        reached.add(destination)
    return DeliveryOutcome(frozenset(reached), len(edges), frozenset(unreachable))


def flood(
    graph: Graph,
    source: Hashable,
    faults: Optional[FaultPlan] = None,
) -> DeliveryOutcome:
    """Broadcast to every reachable node along a spanning tree.

    Cost is the number of spanning-tree edges, i.e. ``(#reachable nodes) - 1``
    — the conventional Ω(n) broadcast of section 1.4.
    """
    if source not in graph:
        raise UnknownNodeError(source)
    effective = _effective_graph(graph, faults)
    all_nodes = set(graph.nodes)
    if faults is not None and not faults.node_is_up(source):
        return DeliveryOutcome(frozenset(), 0, frozenset(all_nodes - {source}))
    if source not in effective:
        return DeliveryOutcome(frozenset(), 0, frozenset(all_nodes - {source}))
    component = effective.connected_component(source)
    unreachable = frozenset(all_nodes - set(component))
    return DeliveryOutcome(frozenset(component), max(len(component) - 1, 0), unreachable)


def delivery_cost_lower_bound(destination_count: int) -> int:
    """Minimum hops to inform ``destination_count`` other nodes.

    Every newly informed node requires at least one message pass, so the cost
    of addressing ``k`` other nodes is at least ``k``.  This is the bound that
    makes #P + #Q a lower bound on message passes in complete networks.
    """
    if destination_count < 0:
        raise ValueError("destination_count must be non-negative")
    return destination_count
