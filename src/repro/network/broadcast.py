"""Spanning-tree broadcast and multicast cost models.

The paper charges broadcast/multicast the number of tree edges used: when the
addressed set induces a connected subgraph containing the sender and messages
are broadcast "over spanning trees in these subgraphs, then the number of
message passes m(i,j) equals the number of addressed nodes #P(i)+#Q(j)"
(section 2.3.5).  Otherwise there is a routing overhead.  This module computes
both the reached set and the exact hop count for three delivery modes:

``unicast``
    One point-to-point message per destination, each along a shortest path.
``multicast``
    One copy flows down a BFS tree rooted at the sender, duplicated at branch
    points; the cost is the number of distinct tree edges used.
``flood``
    Full network broadcast along a spanning tree of the (surviving) network —
    the paper's Ω(n) conventional broadcast.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Optional, Set

from ..core.exceptions import UnknownNodeError
from .faults import FaultPlan, surviving_graph
from .graph import Graph
from .routing import RoutingTable


@dataclass(frozen=True)
class DeliveryOutcome:
    """Result of delivering a message from one node to a set of targets."""

    reached: FrozenSet[Hashable]
    hops: int
    unreachable: FrozenSet[Hashable]

    @property
    def fully_delivered(self) -> bool:
        """Whether every requested destination was reached."""
        return not self.unreachable


def _effective_graph(graph: Graph, faults: Optional[FaultPlan]) -> Graph:
    if faults is None or faults.fault_count == 0:
        return graph
    return surviving_graph(graph, faults)


def unicast(
    graph: Graph,
    table: RoutingTable,
    source: Hashable,
    destinations: Iterable[Hashable],
    faults: Optional[FaultPlan] = None,
    surviving_table: Optional[RoutingTable] = None,
) -> DeliveryOutcome:
    """Deliver one message per destination along shortest surviving paths.

    ``surviving_table``, when given, must be a routing table over the
    surviving subgraph of ``faults``; it is used (together with its graph)
    instead of rebuilding both from scratch.
    :meth:`~repro.network.delivery.DeliveryPlanner._plan_unicast` passes
    its shared per-fault-revision table here; callers that omit it pay a
    surviving-graph plus table construction per call.
    """
    if source not in graph:
        raise UnknownNodeError(source)
    if faults is not None and not faults.node_is_up(source):
        targets = frozenset(d for d in destinations if d != source)
        return DeliveryOutcome(frozenset(), 0, targets)
    if faults is None or faults.fault_count == 0:
        effective = graph
        live_table = table
    elif surviving_table is not None:
        effective = surviving_table.graph
        live_table = surviving_table
    else:
        effective = surviving_graph(graph, faults)
        live_table = RoutingTable(effective)
    reached: Set[Hashable] = set()
    unreachable: Set[Hashable] = set()
    hops = 0
    for destination in destinations:
        if destination == source:
            reached.add(destination)
            continue
        if destination not in effective or not live_table.has_route(
            source, destination
        ):
            unreachable.add(destination)
            continue
        hops += live_table.distance(source, destination)
        reached.add(destination)
    return DeliveryOutcome(frozenset(reached), hops, frozenset(unreachable))


def multicast(
    graph: Graph,
    source: Hashable,
    destinations: Iterable[Hashable],
    faults: Optional[FaultPlan] = None,
    parent: Optional[Dict[Hashable, Hashable]] = None,
) -> DeliveryOutcome:
    """Deliver along a BFS tree; cost = number of distinct tree edges used.

    ``parent``, when given, must be the BFS spanning tree of ``source`` in
    the surviving subgraph of ``faults`` (empty when the source is cut
    off).  :meth:`~repro.network.delivery.DeliveryPlanner._plan_multicast`
    passes its memoized per-fault-revision tree here; callers that omit it
    pay a surviving-graph build plus a BFS per call.
    """
    if source not in graph:
        raise UnknownNodeError(source)
    targets = {d for d in destinations}
    if faults is not None and not faults.node_is_up(source):
        return DeliveryOutcome(frozenset(), 0, frozenset(targets - {source}))
    if parent is None:
        effective = _effective_graph(graph, faults)
        parent = effective.spanning_tree(source) if source in effective else {}
    if source not in parent:
        return DeliveryOutcome(frozenset(), 0, frozenset(targets - {source}))
    reached: Set[Hashable] = set()
    unreachable: Set[Hashable] = set()
    edges: Set[FrozenSet[Hashable]] = set()
    for destination in targets:
        if destination == source:
            reached.add(destination)
            continue
        if destination not in parent:
            unreachable.add(destination)
            continue
        node = destination
        while node != source:
            edges.add(frozenset((node, parent[node])))
            node = parent[node]
        reached.add(destination)
    return DeliveryOutcome(frozenset(reached), len(edges), frozenset(unreachable))


def flood(
    graph: Graph,
    source: Hashable,
    faults: Optional[FaultPlan] = None,
) -> DeliveryOutcome:
    """Broadcast to every reachable node along a spanning tree.

    Cost is the number of spanning-tree edges, i.e. ``(#reachable nodes) - 1``
    — the conventional Ω(n) broadcast of section 1.4.
    """
    if source not in graph:
        raise UnknownNodeError(source)
    effective = _effective_graph(graph, faults)
    all_nodes = set(graph.nodes)
    if faults is not None and not faults.node_is_up(source):
        return DeliveryOutcome(frozenset(), 0, frozenset(all_nodes - {source}))
    if source not in effective:
        return DeliveryOutcome(frozenset(), 0, frozenset(all_nodes - {source}))
    component = effective.connected_component(source)
    unreachable = frozenset(all_nodes - set(component))
    return DeliveryOutcome(frozenset(component), max(len(component) - 1, 0), unreachable)


def delivery_cost_lower_bound(destination_count: int) -> int:
    """Minimum hops to inform ``destination_count`` other nodes.

    Every newly informed node requires at least one message pass, so the cost
    of addressing ``k`` other nodes is at least ``k``.  This is the bound that
    makes #P + #Q a lower bound on message passes in complete networks.
    """
    if destination_count < 0:
        raise ValueError("destination_count must be non-negative")
    return destination_count
