"""Two-phase (Valiant) random relay routing.

Section 3.2 of the paper notes that on hypercubes "excessive clogging at
intermediate nodes may be prevented by sending messages to a random address
first, to be forwarded to their true destination second", citing Valiant's
scheme for fast parallel communication.  This module implements that
two-phase relay on top of any routing table and quantifies the trade-off the
paper alludes to: per-message cost roughly doubles, while the worst-case load
on any single intermediate node drops because traffic no longer funnels
through the same shortest paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, Sequence, Tuple

from ..core.exceptions import UnknownNodeError
from .graph import Graph
from .routing import RoutingTable


@dataclass(frozen=True)
class RelayRoute:
    """One message's route: source → relay → destination."""

    source: Hashable
    relay: Hashable
    destination: Hashable
    path: Tuple[Hashable, ...]

    @property
    def hops(self) -> int:
        """Number of message passes along the full route."""
        return max(len(self.path) - 1, 0)


def direct_route(
    table: RoutingTable, source: Hashable, destination: Hashable
) -> RelayRoute:
    """The ordinary shortest-path route (degenerate relay = source)."""
    path = tuple(table.shortest_path(source, destination))
    return RelayRoute(source=source, relay=source, destination=destination, path=path)


def two_phase_route(
    table: RoutingTable,
    source: Hashable,
    destination: Hashable,
    rng: random.Random,
    relay_pool: Sequence[Hashable] = (),
) -> RelayRoute:
    """Route via a uniformly random relay node (Valiant's scheme).

    ``relay_pool`` defaults to every node of the graph.  The relay may
    coincide with the source or destination, in which case the route
    degenerates gracefully to the direct one.
    """
    graph = table.graph
    if source not in graph:
        raise UnknownNodeError(source)
    if destination not in graph:
        raise UnknownNodeError(destination)
    pool = list(relay_pool) if relay_pool else list(graph.nodes)
    relay = rng.choice(pool)
    first_leg = table.shortest_path(source, relay)
    second_leg = table.shortest_path(relay, destination)
    path = tuple(first_leg) + tuple(second_leg[1:])
    return RelayRoute(source=source, relay=relay, destination=destination, path=path)


@dataclass(frozen=True)
class LoadReport:
    """Traffic statistics of a batch of routed messages."""

    total_hops: int
    max_node_load: int
    mean_node_load: float
    node_load: Dict[Hashable, int]

    @property
    def hotspot_ratio(self) -> float:
        """Max load over mean load — 1.0 is perfectly even."""
        if self.mean_node_load == 0:
            return 0.0
        return self.max_node_load / self.mean_node_load


def measure_load(
    graph: Graph, routes: Iterable[RelayRoute]
) -> LoadReport:
    """Count how many routed messages pass through each node.

    Intermediate nodes (everything except a route's own source and
    destination) are charged; this is the "clogging at intermediate nodes"
    the random relay is meant to spread out.
    """
    load: Dict[Hashable, int] = {node: 0 for node in graph.nodes}
    total_hops = 0
    for route in routes:
        total_hops += route.hops
        for node in route.path[1:-1]:
            load[node] = load.get(node, 0) + 1
    loads = list(load.values())
    mean = sum(loads) / len(loads) if loads else 0.0
    return LoadReport(
        total_hops=total_hops,
        max_node_load=max(loads, default=0),
        mean_node_load=mean,
        node_load=load,
    )


def compare_direct_vs_relay(
    graph: Graph,
    pairs: Sequence[Tuple[Hashable, Hashable]],
    seed: int = 0,
) -> Dict[str, LoadReport]:
    """Route the same (source, destination) pairs directly and via random
    relays and report the load statistics of both schemes."""
    table = RoutingTable(graph)
    rng = random.Random(seed)
    direct = [direct_route(table, s, d) for s, d in pairs]
    relayed = [two_phase_route(table, s, d, rng) for s, d in pairs]
    return {
        "direct": measure_load(graph, direct),
        "relay": measure_load(graph, relayed),
    }
