"""Undirected communication graphs.

The paper models a store-and-forward network as an undirected graph
``G = (U, E)`` with nodes representing processors and edges representing
"bidirectional noninterfering communication channels" (section 2.1).  This
module provides a small, dependency-free graph type with exactly the
operations the rest of the library needs: adjacency queries, connectivity
tests, traversals, induced subgraphs and spanning trees.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Set, Tuple

from ..core.exceptions import DisconnectedGraphError, UnknownNodeError


class Graph:
    """A simple undirected graph with hashable node identifiers.

    Self-loops are ignored (a node never needs a channel to itself: local
    delivery costs zero message passes).  Parallel edges are collapsed.
    """

    def __init__(
        self,
        nodes: Iterable[Hashable] = (),
        edges: Iterable[Tuple[Hashable, Hashable]] = (),
    ) -> None:
        self._adjacency: Dict[Hashable, Set[Hashable]] = {}
        for node in nodes:
            self.add_node(node)
        for u, v in edges:
            self.add_edge(u, v)

    # -- construction -----------------------------------------------------

    def add_node(self, node: Hashable) -> None:
        """Add a node (idempotent)."""
        self._adjacency.setdefault(node, set())

    def add_edge(self, u: Hashable, v: Hashable) -> None:
        """Add an undirected edge, creating endpoints as needed."""
        if u == v:
            return
        self.add_node(u)
        self.add_node(v)
        self._adjacency[u].add(v)
        self._adjacency[v].add(u)

    def remove_node(self, node: Hashable) -> None:
        """Remove a node and all its incident edges."""
        if node not in self._adjacency:
            raise UnknownNodeError(node)
        for neighbour in self._adjacency.pop(node):
            self._adjacency[neighbour].discard(node)

    def remove_edge(self, u: Hashable, v: Hashable) -> None:
        """Remove the edge between ``u`` and ``v`` if present."""
        if u not in self._adjacency:
            raise UnknownNodeError(u)
        if v not in self._adjacency:
            raise UnknownNodeError(v)
        self._adjacency[u].discard(v)
        self._adjacency[v].discard(u)

    def copy(self) -> "Graph":
        """Return a deep copy of the graph."""
        clone = Graph()
        clone._adjacency = {node: set(nbrs) for node, nbrs in self._adjacency.items()}
        return clone

    # -- queries ----------------------------------------------------------

    @property
    def nodes(self) -> List[Hashable]:
        """All nodes, in insertion order."""
        return list(self._adjacency)

    @property
    def node_set(self) -> FrozenSet[Hashable]:
        """All nodes as a frozen set."""
        return frozenset(self._adjacency)

    @property
    def edges(self) -> List[Tuple[Hashable, Hashable]]:
        """All edges, each reported once."""
        seen = set()
        result = []
        for u, nbrs in self._adjacency.items():
            for v in nbrs:
                key = frozenset((u, v))
                if key not in seen:
                    seen.add(key)
                    result.append((u, v))
        return result

    def __contains__(self, node: Hashable) -> bool:
        return node in self._adjacency

    def __len__(self) -> int:
        return len(self._adjacency)

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._adjacency)

    @property
    def node_count(self) -> int:
        """Number of nodes ``n = #U``."""
        return len(self._adjacency)

    @property
    def edge_count(self) -> int:
        """Number of edges ``#E``."""
        return sum(len(nbrs) for nbrs in self._adjacency.values()) // 2

    def neighbours(self, node: Hashable) -> FrozenSet[Hashable]:
        """The direct neighbours of ``node``."""
        try:
            return frozenset(self._adjacency[node])
        except KeyError:
            raise UnknownNodeError(node) from None

    def degree(self, node: Hashable) -> int:
        """The degree of ``node``."""
        return len(self.neighbours(node))

    def degree_histogram(self) -> Dict[int, int]:
        """Map ``degree -> number of nodes with that degree``.

        This is exactly the shape of the UUCPnet table in section 3.6 of the
        paper.
        """
        histogram: Dict[int, int] = {}
        for node in self._adjacency:
            d = self.degree(node)
            histogram[d] = histogram.get(d, 0) + 1
        return dict(sorted(histogram.items()))

    def has_edge(self, u: Hashable, v: Hashable) -> bool:
        """Whether the edge ``{u, v}`` is present."""
        return v in self._adjacency.get(u, ())

    # -- traversal / connectivity ------------------------------------------

    def bfs_order(self, source: Hashable) -> List[Hashable]:
        """Nodes reachable from ``source`` in breadth-first order."""
        if source not in self._adjacency:
            raise UnknownNodeError(source)
        visited = {source}
        order = [source]
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbour in sorted(self._adjacency[node], key=repr):
                if neighbour not in visited:
                    visited.add(neighbour)
                    order.append(neighbour)
                    queue.append(neighbour)
        return order

    def connected_component(self, source: Hashable) -> FrozenSet[Hashable]:
        """All nodes in the same connected component as ``source``."""
        return frozenset(self.bfs_order(source))

    def connected_components(self) -> List[FrozenSet[Hashable]]:
        """All connected components."""
        remaining = set(self._adjacency)
        components = []
        while remaining:
            source = next(iter(remaining))
            component = self.connected_component(source)
            components.append(component)
            remaining -= component
        return components

    def is_connected(self) -> bool:
        """Whether the graph is connected (the empty graph counts as
        connected)."""
        if not self._adjacency:
            return True
        return len(self.connected_component(next(iter(self._adjacency)))) == len(self)

    def require_connected(self) -> None:
        """Raise :class:`DisconnectedGraphError` unless the graph is
        connected."""
        if not self.is_connected():
            raise DisconnectedGraphError(
                f"graph with {self.node_count} nodes is not connected "
                f"({len(self.connected_components())} components)"
            )

    # -- derived graphs ----------------------------------------------------

    def induced_subgraph(self, nodes: Iterable[Hashable]) -> "Graph":
        """The subgraph induced by ``nodes``."""
        keep = set(nodes)
        unknown = keep - set(self._adjacency)
        if unknown:
            raise UnknownNodeError(next(iter(unknown)))
        sub = Graph(nodes=keep)
        for u in keep:
            for v in self._adjacency[u]:
                if v in keep:
                    sub.add_edge(u, v)
        return sub

    def spanning_tree(self, root: Hashable) -> Dict[Hashable, Hashable]:
        """A BFS spanning tree of the component of ``root``.

        Returns a mapping ``child -> parent``; the root maps to itself.  The
        tree is used to implement spanning-tree broadcast (the paper's
        reference [2]) so that a broadcast over ``k`` nodes costs exactly
        ``k - 1`` message passes.
        """
        if root not in self._adjacency:
            raise UnknownNodeError(root)
        parent = {root: root}
        queue = deque([root])
        while queue:
            node = queue.popleft()
            for neighbour in sorted(self._adjacency[node], key=repr):
                if neighbour not in parent:
                    parent[neighbour] = node
                    queue.append(neighbour)
        return parent

    def diameter(self) -> int:
        """The diameter (longest shortest path) of a connected graph."""
        self.require_connected()
        best = 0
        for source in self._adjacency:
            distances = self.single_source_distances(source)
            best = max(best, max(distances.values(), default=0))
        return best

    def single_source_distances(self, source: Hashable) -> Dict[Hashable, int]:
        """Hop distances from ``source`` to every reachable node."""
        if source not in self._adjacency:
            raise UnknownNodeError(source)
        distances = {source: 0}
        queue = deque([source])
        while queue:
            node = queue.popleft()
            for neighbour in self._adjacency[node]:
                if neighbour not in distances:
                    distances[neighbour] = distances[node] + 1
                    queue.append(neighbour)
        return distances

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Graph(nodes={self.node_count}, edges={self.edge_count})"


def complete_graph(n: int) -> Graph:
    """The complete graph on nodes ``0..n-1``.

    The theory of section 2 assumes a complete network so that "all messages
    can be routed in one message pass to their destinations"; lower bounds on
    complete networks hold a fortiori for all networks.
    """
    if n < 0:
        raise ValueError("n must be non-negative")
    graph = Graph(nodes=range(n))
    for u in range(n):
        for v in range(u + 1, n):
            graph.add_edge(u, v)
    return graph
