"""Per-node caches of posted ``(port, address)`` pairs.

Section 2.1 of the paper assumes every node has a cache "large enough to
store all (port, address) pairs associated with addresses i such that
j ∈ P(i)" and that entries are "made or updated whenever a message is received
from a server process with its address".  :class:`NodeCache` implements that
unbounded, timestamp-reconciled cache.

Lighthouse Locate (section 4) explicitly relaxes this: "too-small caches can
discard (port, address) pairs" and postings expire after ``d`` time units.
:class:`ExpiringCache` and :class:`BoundedCache` provide those behaviours.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from ..core.exceptions import CacheOverflowError
from ..core.types import Address, Port, PostRecord


class NodeCache:
    """Unbounded cache mapping ports to their freshest posting.

    The cache keeps one record per ``(port, server_id)`` pair so that several
    equivalent servers of the same service can be registered simultaneously
    (section 1.3: "a specific service may be offered by ... more than one
    server process").  Lookups return the freshest record.
    """

    def __init__(self) -> None:
        self._records: Dict[Port, Dict[str, PostRecord]] = {}
        self._writes = 0

    # -- mutation ----------------------------------------------------------

    def post(self, record: PostRecord) -> None:
        """Insert or refresh a posting (newer timestamps win)."""
        per_port = self._records.setdefault(record.port, {})
        existing = per_port.get(record.server_id)
        if existing is None or record.is_newer_than(existing):
            per_port[record.server_id] = record
        self._writes += 1

    def remove_port(self, port: Port) -> None:
        """Drop all postings for ``port``."""
        self._records.pop(port, None)

    def remove_server(self, port: Port, server_id: str) -> None:
        """Drop the posting of one particular server for ``port``."""
        per_port = self._records.get(port)
        if per_port is not None:
            per_port.pop(server_id, None)
            if not per_port:
                del self._records[port]

    def remove_address(self, address: Address) -> None:
        """Drop every posting that points at ``address``.

        Used when the simulator learns that the node at ``address`` crashed.
        """
        for port in list(self._records):
            per_port = self._records[port]
            for server_id in list(per_port):
                if per_port[server_id].address == address:
                    del per_port[server_id]
            if not per_port:
                del self._records[port]

    def clear(self) -> None:
        """Drop everything (e.g. the node itself crashed and restarted)."""
        self._records.clear()

    # -- queries -----------------------------------------------------------

    def lookup(self, port: Port) -> Optional[PostRecord]:
        """The freshest posting for ``port``, or ``None``."""
        per_port = self._records.get(port)
        if not per_port:
            return None
        return max(per_port.values(), key=lambda r: (r.timestamp, repr(r.address)))

    def lookup_all(self, port: Port) -> List[PostRecord]:
        """All postings for ``port`` (all equivalent servers), freshest
        first."""
        per_port = self._records.get(port, {})
        return sorted(
            per_port.values(),
            key=lambda r: (r.timestamp, repr(r.address)),
            reverse=True,
        )

    def __contains__(self, port: Port) -> bool:
        return port in self._records and bool(self._records[port])

    def __len__(self) -> int:
        """Number of stored ``(port, server)`` records — the paper's cache
        size measure."""
        return sum(len(per_port) for per_port in self._records.values())

    def ports(self) -> List[Port]:
        """All ports with at least one posting."""
        return [port for port, per_port in self._records.items() if per_port]

    def records(self) -> Iterator[PostRecord]:
        """Iterate over every stored record."""
        for per_port in self._records.values():
            yield from per_port.values()

    @property
    def write_count(self) -> int:
        """Number of post operations ever applied (monitoring aid)."""
        return self._writes


class BoundedCache(NodeCache):
    """A cache with at most ``capacity`` records.

    In strict mode an insertion that would exceed the capacity raises
    :class:`CacheOverflowError` — this is how tests verify the paper's cache
    size claims (e.g. size ``sqrt(n)`` suffices for the Manhattan method).
    In non-strict mode the least recently written record is evicted, turning
    the cache into the "too-small" cache of Lighthouse Locate.
    """

    def __init__(self, capacity: int, strict: bool = True) -> None:
        if capacity < 0:
            raise ValueError("capacity must be non-negative")
        super().__init__()
        self._capacity = capacity
        self._strict = strict
        self._insertion_order: "OrderedDict[Tuple[Port, str], None]" = OrderedDict()

    @property
    def capacity(self) -> int:
        """Maximum number of records the cache may hold."""
        return self._capacity

    def post(self, record: PostRecord) -> None:
        key = (record.port, record.server_id)
        is_new = key not in self._insertion_order
        if is_new and len(self._insertion_order) >= self._capacity:
            if self._strict:
                raise CacheOverflowError(
                    f"cache of capacity {self._capacity} cannot hold a new "
                    f"posting for {record.port}"
                )
            # Evict the oldest record (Lighthouse-style best effort).
            oldest_key, _ = self._insertion_order.popitem(last=False)
            super().remove_server(*oldest_key)
        super().post(record)
        self._insertion_order[key] = None
        self._insertion_order.move_to_end(key)

    def remove_server(self, port: Port, server_id: str) -> None:
        super().remove_server(port, server_id)
        self._insertion_order.pop((port, server_id), None)

    def remove_port(self, port: Port) -> None:
        super().remove_port(port)
        for key in [k for k in self._insertion_order if k[0] == port]:
            del self._insertion_order[key]

    def remove_address(self, address: Address) -> None:
        doomed = [
            (record.port, record.server_id)
            for record in self.records()
            if record.address == address
        ]
        super().remove_address(address)
        for key in doomed:
            self._insertion_order.pop(key, None)

    def clear(self) -> None:
        super().clear()
        self._insertion_order.clear()


class ExpiringCache(NodeCache):
    """A cache whose postings expire ``ttl`` time units after their
    timestamp.

    Implements the Lighthouse Locate rule that "a node discards a
    (port, address) posting after d time units" (section 4).  The cache is
    passive: expired entries are filtered out at lookup time against the
    clock value supplied by the caller.
    """

    def __init__(self, ttl: int) -> None:
        if ttl <= 0:
            raise ValueError("ttl must be positive")
        super().__init__()
        self._ttl = ttl

    @property
    def ttl(self) -> int:
        """Time units a posting stays valid."""
        return self._ttl

    def expire(self, now: int) -> int:
        """Remove postings older than ``now - ttl``; return how many were
        dropped."""
        dropped = 0
        for port in list(self._records):
            per_port = self._records[port]
            for server_id in list(per_port):
                if per_port[server_id].timestamp + self._ttl <= now:
                    del per_port[server_id]
                    dropped += 1
            if not per_port:
                del self._records[port]
        return dropped

    def lookup_at(self, port: Port, now: int) -> Optional[PostRecord]:
        """Freshest unexpired posting for ``port`` at time ``now``."""
        self.expire(now)
        return self.lookup(port)
