"""A minimal discrete-event scheduler.

Most of the paper's algorithms are analysed per match-making *instance* and do
not need global time.  Lighthouse Locate (section 4) does: servers beam every
``delta`` time units, postings evaporate after ``d`` time units, and clients
escalate their beam length over time.  :class:`EventLoop` provides the logical
clock and ordered callback execution those simulations need.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, List, Optional, Tuple


class EventLoop:
    """A priority-queue based discrete-event loop with integer time."""

    def __init__(self) -> None:
        self._queue: List[Tuple[int, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._now = 0
        self._processed = 0

    @property
    def now(self) -> int:
        """The current logical time."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of scheduled, not yet executed events."""
        return len(self._queue)

    @property
    def processed(self) -> int:
        """Number of events executed so far."""
        return self._processed

    def schedule_at(self, when: int, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run at absolute time ``when``."""
        if when < self._now:
            raise ValueError(
                f"cannot schedule in the past: now={self._now}, when={when}"
            )
        heapq.heappush(self._queue, (when, next(self._sequence), action))

    def schedule_after(self, delay: int, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError("delay must be non-negative")
        self.schedule_at(self._now + delay, action)

    def step(self) -> bool:
        """Run the earliest pending event.  Returns ``False`` when idle."""
        if not self._queue:
            return False
        when, _, action = heapq.heappop(self._queue)
        self._now = when
        action()
        self._processed += 1
        return True

    def run_until(self, deadline: int, max_events: Optional[int] = None) -> int:
        """Run events with time ≤ ``deadline``; return how many ran.

        ``max_events`` guards against runaway self-rescheduling loops.
        """
        executed = 0
        while self._queue and self._queue[0][0] <= deadline:
            if max_events is not None and executed >= max_events:
                break
            self.step()
            executed += 1
        self._now = max(self._now, deadline)
        return executed

    def run_until_idle(self, max_events: int = 1_000_000) -> int:
        """Run until no events remain (bounded by ``max_events``)."""
        executed = 0
        while self._queue and executed < max_events:
            self.step()
            executed += 1
        return executed

    def advance(self, delta: int) -> int:
        """Advance the clock by ``delta``, running due events."""
        if delta < 0:
            raise ValueError("delta must be non-negative")
        return self.run_until(self._now + delta)
