"""Fault injection: node crashes, link failures and surviving subnetworks.

Section 2.4 of the paper discusses robustness: a distributed name server
should keep matching surviving clients with surviving servers "no matter how
many node crashes occur, as long as a surviving network remains".  The
:class:`FaultPlan` describes which nodes/links fail; the simulator consults it
and analysis code uses :func:`surviving_graph` to reason about the surviving
subnetwork.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import FrozenSet, Hashable, Iterable, Set, Tuple

from .graph import Graph


@dataclass
class FaultPlan:
    """A set of crashed nodes and failed links.

    ``revision`` increments on every mutation, so consumers (e.g. the
    simulator's surviving-routing cache) can cheaply detect change.
    """

    crashed_nodes: Set[Hashable] = field(default_factory=set)
    failed_links: Set[FrozenSet] = field(default_factory=set)
    revision: int = 0

    def crash_node(self, node: Hashable) -> None:
        """Mark ``node`` as crashed."""
        self.crashed_nodes.add(node)
        self.revision += 1

    def recover_node(self, node: Hashable) -> None:
        """Mark ``node`` as recovered."""
        self.crashed_nodes.discard(node)
        self.revision += 1

    def fail_link(self, u: Hashable, v: Hashable) -> None:
        """Mark the link ``{u, v}`` as failed."""
        self.failed_links.add(frozenset((u, v)))
        self.revision += 1

    def restore_link(self, u: Hashable, v: Hashable) -> None:
        """Mark the link ``{u, v}`` as restored."""
        self.failed_links.discard(frozenset((u, v)))
        self.revision += 1

    def node_is_up(self, node: Hashable) -> bool:
        """Whether ``node`` is up under this plan."""
        return node not in self.crashed_nodes

    def link_is_up(self, u: Hashable, v: Hashable) -> bool:
        """Whether the link ``{u, v}`` is usable under this plan."""
        return (
            frozenset((u, v)) not in self.failed_links
            and self.node_is_up(u)
            and self.node_is_up(v)
        )

    @property
    def fault_count(self) -> int:
        """Total number of faults (crashed nodes plus failed links)."""
        return len(self.crashed_nodes) + len(self.failed_links)

    def clear(self) -> None:
        """Remove all faults."""
        self.crashed_nodes.clear()
        self.failed_links.clear()
        self.revision += 1


def surviving_graph(graph: Graph, plan: FaultPlan) -> Graph:
    """The subnetwork that survives ``plan``: up nodes and up links only."""
    survivors = [node for node in graph.nodes if plan.node_is_up(node)]
    surviving = Graph(nodes=survivors)
    for u, v in graph.edges:
        if plan.link_is_up(u, v):
            surviving.add_edge(u, v)
    return surviving


def random_fault_plan(
    graph: Graph,
    node_failures: int,
    rng: random.Random,
    protected: Iterable[Hashable] = (),
) -> FaultPlan:
    """Crash ``node_failures`` uniformly random nodes, never the protected
    ones.

    Used by robustness experiments: crash ``f`` random nodes (excluding the
    client and server hosts) and check whether the match still succeeds.
    """
    protected_set = set(protected)
    candidates = [node for node in graph.nodes if node not in protected_set]
    if node_failures > len(candidates):
        raise ValueError(
            f"cannot crash {node_failures} nodes; only {len(candidates)} "
            f"unprotected nodes exist"
        )
    plan = FaultPlan()
    for node in rng.sample(candidates, node_failures):
        plan.crash_node(node)
    return plan


def max_tolerated_faults(rendezvous_size: int) -> int:
    """How many arbitrary node crashes a rendezvous of the given size
    tolerates.

    Section 2.4: choosing ``#(P(i) ∩ Q(j)) ≥ f + 1`` tolerates ``f`` faults,
    so a rendezvous set of size ``s`` tolerates ``s - 1`` crashes of
    rendezvous nodes.
    """
    if rendezvous_size < 0:
        raise ValueError("rendezvous_size must be non-negative")
    return max(rendezvous_size - 1, 0)
