"""Fault injection: node crashes, link failures and surviving subnetworks.

Section 2.4 of the paper discusses robustness: a distributed name server
should keep matching surviving clients with surviving servers "no matter how
many node crashes occur, as long as a surviving network remains".  The
:class:`FaultPlan` describes which nodes/links fail; the simulator consults it
and analysis code uses :func:`surviving_graph` to reason about the surviving
subnetwork.

A static fault *set* only captures one instant.  :class:`FaultTimeline`
extends the model to time: an ordered program of :class:`FaultEvent`\\ s
(crash/recover waves, link flaps, region partitions and healing, correlated
failures) that a consumer advances against a live network, moving the
:class:`FaultPlan` — and therefore the delivery planner's revision — mid-run.
The builder functions at the bottom of this module generate the standard
regimes from a graph and a seeded generator.
"""

from __future__ import annotations

import random
import warnings
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
)

from .graph import Graph


@dataclass
class FaultPlan:
    """A set of crashed nodes and failed links.

    ``revision`` increments on every mutation, so consumers (e.g. the
    simulator's surviving-routing cache) can cheaply detect change.
    """

    crashed_nodes: Set[Hashable] = field(default_factory=set)
    failed_links: Set[FrozenSet] = field(default_factory=set)
    revision: int = 0

    def crash_node(self, node: Hashable) -> None:
        """Mark ``node`` as crashed."""
        self.crashed_nodes.add(node)
        self.revision += 1

    def recover_node(self, node: Hashable) -> None:
        """Mark ``node`` as recovered."""
        self.crashed_nodes.discard(node)
        self.revision += 1

    def fail_link(self, u: Hashable, v: Hashable) -> None:
        """Mark the link ``{u, v}`` as failed."""
        self.failed_links.add(frozenset((u, v)))
        self.revision += 1

    def restore_link(self, u: Hashable, v: Hashable) -> None:
        """Mark the link ``{u, v}`` as restored."""
        self.failed_links.discard(frozenset((u, v)))
        self.revision += 1

    def node_is_up(self, node: Hashable) -> bool:
        """Whether ``node`` is up under this plan."""
        return node not in self.crashed_nodes

    def link_is_up(self, u: Hashable, v: Hashable) -> bool:
        """Whether the link ``{u, v}`` is usable under this plan."""
        return (
            frozenset((u, v)) not in self.failed_links
            and self.node_is_up(u)
            and self.node_is_up(v)
        )

    @property
    def fault_count(self) -> int:
        """Total number of faults (crashed nodes plus failed links)."""
        return len(self.crashed_nodes) + len(self.failed_links)

    def clear(self) -> None:
        """Remove all faults.

        Clearing an already-empty plan is a no-op (no revision bump), so
        consumers keyed on the revision — the delivery planner's caches —
        survive a defensive clear between fault-free runs.
        """
        if not self.crashed_nodes and not self.failed_links:
            return
        self.crashed_nodes.clear()
        self.failed_links.clear()
        self.revision += 1


def surviving_graph(graph: Graph, plan: FaultPlan) -> Graph:
    """The subnetwork that survives ``plan``: up nodes and up links only."""
    survivors = [node for node in graph.nodes if plan.node_is_up(node)]
    surviving = Graph(nodes=survivors)
    for u, v in graph.edges:
        if plan.link_is_up(u, v):
            surviving.add_edge(u, v)
    return surviving


def random_fault_plan(
    graph: Graph,
    node_failures: int,
    rng: random.Random,
    protected: Iterable[Hashable] = (),
    rendezvous_size: Optional[int] = None,
    strict: bool = False,
    at_time: Optional[float] = None,
):
    """Crash ``node_failures`` uniformly random nodes, never the protected
    ones.

    Used by robustness experiments: crash ``f`` random nodes (excluding the
    client and server hosts) and check whether the match still succeeds.

    When ``rendezvous_size`` is given, the request is checked against the
    section-2.4 guarantee: a rendezvous of size ``s`` only tolerates
    ``s - 1`` crashes (:func:`max_tolerated_faults`).  Asking for more is a
    mistake in the experiment setup — with ``strict=True`` it raises
    :class:`ValueError`; by default the count is clamped to the tolerated
    maximum with a :class:`UserWarning`, so a sweep keeps running but the
    over-ask is visible.

    By default the crashes are instantaneous state — a :class:`FaultPlan`.
    Pass ``at_time`` to get the same crash *set* as a scheduled
    :class:`FaultTimeline` instead (every victim crashes at that virtual
    time, no recoveries), ready to merge into a timed run's fault program.
    The victims come from one ``rng.sample`` draw either way, so the same
    seed fells the same nodes in both shapes.
    """
    # The rendezvous clamp runs first: a non-strict over-ask the clamp can
    # satisfy must keep the sweep running even when the raw count exceeds
    # the unprotected population.
    if rendezvous_size is not None:
        tolerated = max_tolerated_faults(rendezvous_size)
        if node_failures > tolerated:
            message = (
                f"{node_failures} crashes exceed the {tolerated} tolerated by "
                f"a rendezvous of size {rendezvous_size}"
            )
            if strict:
                raise ValueError(message)
            warnings.warn(f"{message}; clamping to {tolerated}", UserWarning,
                          stacklevel=2)
            node_failures = tolerated
    protected_set = set(protected)
    candidates = [node for node in graph.nodes if node not in protected_set]
    if node_failures > len(candidates):
        raise ValueError(
            f"cannot crash {node_failures} nodes; only {len(candidates)} "
            f"unprotected nodes exist"
        )
    struck = rng.sample(candidates, node_failures)
    if at_time is not None:
        return FaultTimeline(
            FaultEvent(at_time, CRASH_NODE, (node,)) for node in struck
        )
    plan = FaultPlan()
    for node in struck:
        plan.crash_node(node)
    return plan


# ---------------------------------------------------------------------------
# Fault timelines: scheduled fault programs
# ---------------------------------------------------------------------------

#: Fault-event kinds a timeline may contain.
CRASH_NODE = "crash_node"
RECOVER_NODE = "recover_node"
LINK_DOWN = "link_down"
LINK_UP = "link_up"

FAULT_EVENT_KINDS = (CRASH_NODE, RECOVER_NODE, LINK_DOWN, LINK_UP)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault action.

    ``subject`` is ``(node,)`` for node events and ``(u, v)`` for link
    events.
    """

    time: float
    kind: str
    subject: Tuple[Hashable, ...]

    def __post_init__(self) -> None:
        if self.kind not in FAULT_EVENT_KINDS:
            raise ValueError(
                f"unknown fault event kind {self.kind!r}; "
                f"expected one of {FAULT_EVENT_KINDS}"
            )
        expected = 1 if self.kind in (CRASH_NODE, RECOVER_NODE) else 2
        if len(self.subject) != expected:
            raise ValueError(
                f"{self.kind} events take {expected} subject element(s), "
                f"got {self.subject!r}"
            )
        if self.time < 0:
            raise ValueError("event time must be non-negative")


class FaultTimeline:
    """A time-ordered program of :class:`FaultEvent`\\ s.

    Consumers (the workload driver, tests) walk the events in order and
    apply each to a network; the network's :class:`FaultPlan` revision then
    advances exactly once per event, which is what exercises revision-keyed
    caches under realistic churn.  Sorting is stable: events scheduled for
    the same instant run in the order they were generated.
    """

    def __init__(self, events: Iterable[FaultEvent] = ()) -> None:
        self._events: List[FaultEvent] = sorted(events, key=lambda e: e.time)

    @property
    def events(self) -> List[FaultEvent]:
        """The scheduled events, in execution order."""
        return list(self._events)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self._events)

    def __bool__(self) -> bool:
        return bool(self._events)

    def merged(self, other: "FaultTimeline") -> "FaultTimeline":
        """A new timeline interleaving this one with ``other`` by time."""
        return FaultTimeline(self._events + other._events)

    def shifted(self, offset: float) -> "FaultTimeline":
        """A copy with every event moved ``offset`` seconds later.

        Lets a canned fault program (e.g. a :func:`random_fault_plan`
        rendered with ``at_time``) be replayed at different points of a
        run's virtual clock without regenerating its random choices.
        """
        return FaultTimeline(
            FaultEvent(event.time + offset, event.kind, event.subject)
            for event in self._events
        )

    def event_counts(self) -> Dict[str, int]:
        """How many events of each kind the timeline holds."""
        counts: Dict[str, int] = {}
        for event in self._events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        return counts

    def horizon(self) -> float:
        """The time of the last scheduled event (0.0 when empty)."""
        return self._events[-1].time if self._events else 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"FaultTimeline(events={len(self._events)})"


def _eligible_nodes(
    graph: Graph, protected: Iterable[Hashable]
) -> List[Hashable]:
    protected_set = set(protected)
    nodes = [node for node in graph.nodes if node not in protected_set]
    if not nodes:
        raise ValueError("no unprotected nodes to fail")
    return sorted(nodes, key=repr)


def crash_recover_waves(
    graph: Graph,
    rng: random.Random,
    waves: int,
    wave_size: int,
    start: float,
    period: float,
    downtime: float,
    protected: Iterable[Hashable] = (),
) -> FaultTimeline:
    """``waves`` crash waves, each felling ``wave_size`` random nodes.

    Wave ``k`` strikes at ``start + k * period``; every struck node recovers
    ``downtime`` later.  Protected nodes (client hosts, say) never crash,
    and when ``downtime > period`` nodes still down from an earlier wave are
    not re-struck — re-crashing them would pair with the earlier recovery
    and silently shorten their declared outage.
    """
    if waves < 1 or wave_size < 1:
        raise ValueError("waves and wave_size must be at least 1")
    candidates = _eligible_nodes(graph, protected)
    down_until: Dict[Hashable, float] = {}
    events: List[FaultEvent] = []
    for wave in range(waves):
        at = start + wave * period
        available = [n for n in candidates if down_until.get(n, 0.0) <= at]
        struck = rng.sample(available, min(wave_size, len(available)))
        for node in struck:
            events.append(FaultEvent(at, CRASH_NODE, (node,)))
            events.append(FaultEvent(at + downtime, RECOVER_NODE, (node,)))
            down_until[node] = at + downtime
    return FaultTimeline(events)


def link_flaps(
    graph: Graph,
    rng: random.Random,
    flaps: int,
    start: float,
    period: float,
    downtime: float,
) -> FaultTimeline:
    """``flaps`` link flaps: a random link fails, then heals ``downtime``
    later.

    Flap ``k`` begins at ``start + k * period``.  The same link may flap
    more than once — exactly the fail -> heal -> fail-again sequence that
    revision-keyed caches must survive.
    """
    if flaps < 1:
        raise ValueError("flaps must be at least 1")
    edges = sorted(graph.edges, key=repr)
    if not edges:
        raise ValueError("graph has no links to flap")
    events: List[FaultEvent] = []
    for flap in range(flaps):
        at = start + flap * period
        u, v = edges[rng.randrange(len(edges))]
        events.append(FaultEvent(at, LINK_DOWN, (u, v)))
        events.append(FaultEvent(at + downtime, LINK_UP, (u, v)))
    return FaultTimeline(events)


def region_partition(
    graph: Graph,
    rng: random.Random,
    at: float,
    heal_at: float,
    region_size: int,
    seed_node: Optional[Hashable] = None,
) -> FaultTimeline:
    """Partition a BFS region of ``region_size`` nodes off the network.

    Every link crossing the region boundary goes down at ``at`` and comes
    back at ``heal_at`` — nodes stay up throughout, so the region keeps
    serving internally (a classic datacenter partition, not a crash).
    """
    if region_size < 1:
        raise ValueError("region_size must be at least 1")
    if heal_at <= at:
        raise ValueError("heal_at must be after at")
    nodes = sorted(graph.nodes, key=repr)
    root = seed_node if seed_node is not None else nodes[rng.randrange(len(nodes))]
    region = set(graph.bfs_order(root)[:region_size])
    events: List[FaultEvent] = []
    for u, v in sorted(graph.edges, key=repr):
        if (u in region) != (v in region):
            events.append(FaultEvent(at, LINK_DOWN, (u, v)))
            events.append(FaultEvent(heal_at, LINK_UP, (u, v)))
    return FaultTimeline(events)


def correlated_failures(
    graph: Graph,
    rng: random.Random,
    shots: int,
    start: float,
    period: float,
    downtime: float,
    blast_radius: int = 3,
    protected: Iterable[Hashable] = (),
) -> FaultTimeline:
    """``shots`` correlated failures: an epicenter and up to
    ``blast_radius - 1`` of its neighbours crash together (one rack, one
    power feed), recovering together ``downtime`` later.  Like
    :func:`crash_recover_waves`, nodes still down from an earlier shot are
    not re-struck.
    """
    if shots < 1 or blast_radius < 1:
        raise ValueError("shots and blast_radius must be at least 1")
    protected_set = set(protected)
    candidates = _eligible_nodes(graph, protected_set)
    down_until: Dict[Hashable, float] = {}
    events: List[FaultEvent] = []
    for shot in range(shots):
        at = start + shot * period
        available = [n for n in candidates if down_until.get(n, 0.0) <= at]
        if not available:
            continue
        epicenter = available[rng.randrange(len(available))]
        blast = [epicenter]
        neighbours = sorted(
            (
                n for n in graph.neighbours(epicenter)
                if n not in protected_set and down_until.get(n, 0.0) <= at
            ),
            key=repr,
        )
        blast.extend(rng.sample(neighbours, min(blast_radius - 1, len(neighbours))))
        for node in blast:
            events.append(FaultEvent(at, CRASH_NODE, (node,)))
            events.append(FaultEvent(at + downtime, RECOVER_NODE, (node,)))
            down_until[node] = at + downtime
    return FaultTimeline(events)


def max_tolerated_faults(rendezvous_size: int) -> int:
    """How many arbitrary node crashes a rendezvous of the given size
    tolerates.

    Section 2.4: choosing ``#(P(i) ∩ Q(j)) ≥ f + 1`` tolerates ``f`` faults,
    so a rendezvous set of size ``s`` tolerates ``s - 1`` crashes of
    rendezvous nodes.
    """
    if rendezvous_size < 0:
        raise ValueError("rendezvous_size must be non-negative")
    return max(rendezvous_size - 1, 0)
