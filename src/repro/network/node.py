"""Network nodes.

A node hosts a cache of ``(port, address)`` postings and may host any number
of processes (servers and clients).  The node knows nothing about strategies:
it only stores postings delivered to it and answers queries against its cache,
which is exactly the behaviour assumed of rendezvous nodes in section 2.1.
"""

from __future__ import annotations

from typing import Hashable, List, Optional

from ..core.exceptions import NodeDownError
from ..core.types import Address, Port, PostRecord
from .cache import NodeCache


class Node:
    """A processor in the network.

    Parameters
    ----------
    node_id:
        The identifier of this node in the communication graph.
    cache:
        The posting cache to use; defaults to an unbounded
        :class:`~repro.network.cache.NodeCache`.
    """

    def __init__(self, node_id: Hashable, cache: Optional[NodeCache] = None) -> None:
        self._id = node_id
        self._cache = cache if cache is not None else NodeCache()
        self._alive = True

    # -- identity / liveness ------------------------------------------------

    @property
    def node_id(self) -> Hashable:
        """This node's identifier."""
        return self._id

    @property
    def address(self) -> Address:
        """This node's address."""
        return Address(self._id)

    @property
    def alive(self) -> bool:
        """Whether the node is up."""
        return self._alive

    def crash(self) -> None:
        """Crash the node.  Its cache contents are lost."""
        self._alive = False
        self._cache.clear()

    def recover(self) -> None:
        """Bring a crashed node back up with an empty cache."""
        self._alive = True

    def _require_alive(self) -> None:
        if not self._alive:
            raise NodeDownError(self._id)

    # -- cache operations ----------------------------------------------------

    @property
    def cache(self) -> NodeCache:
        """The node's posting cache."""
        return self._cache

    def replace_cache(self, cache: NodeCache) -> None:
        """Install a different cache implementation (bounded, expiring, ...)."""
        self._cache = cache

    def accept_post(self, record: PostRecord) -> None:
        """Store a posting delivered to this node."""
        self._require_alive()
        self._cache.post(record)

    def answer_query(self, port: Port) -> Optional[PostRecord]:
        """Answer a query for ``port`` from the local cache."""
        self._require_alive()
        return self._cache.lookup(port)

    def answer_query_all(self, port: Port) -> List[PostRecord]:
        """All known postings for ``port`` (one per equivalent server)."""
        self._require_alive()
        return self._cache.lookup_all(port)

    def forget_port(self, port: Port) -> None:
        """Drop all postings for ``port`` (server withdrew the service)."""
        self._require_alive()
        self._cache.remove_port(port)

    def forget_server(self, port: Port, server_id: str) -> None:
        """Drop the posting of a particular server for ``port``."""
        self._require_alive()
        self._cache.remove_server(port, server_id)

    def cache_size(self) -> int:
        """Number of records currently stored — the paper's cache-size
        measure."""
        return len(self._cache)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "up" if self._alive else "down"
        return f"Node({self._id!r}, {status}, cache={self.cache_size()})"
