"""Fault-aware delivery planning.

The paper's whole argument is about counting message passes, so the
simulator must not spend :math:`O(n^2)` *Python* work to account for a
single message.  Historically it did exactly that under faults: every
``unicast`` call rebuilt a :class:`~repro.network.routing.RoutingTable`
over the surviving subgraph, and every ``multicast`` re-ran a BFS to get
its spanning tree.  :class:`DeliveryPlanner` centralises all of that
routing work and keys it on the :class:`~repro.network.faults.FaultPlan`
revision counter, so the cost of planning is paid once per *fault
revision*, not once per *message*:

``routing_table()``
    the single shared :class:`RoutingTable` over the surviving subgraph
    (the fault-free table when no faults are active);
``spanning_tree(source)``
    the memoized BFS tree used by multicast, one per ``(source,
    revision)``;
``plan(source, targets, mode)``
    a fully memoized :class:`~repro.network.broadcast.DeliveryOutcome`
    per ``(source, frozenset(targets), mode, revision)``.  Because the
    match-maker's P/Q sets are themselves memoized frozensets, a
    steady-state workload hits this cache with O(1) dict lookups per
    post/query — no graph traversal at all.

Cache effectiveness is observable: every hit/miss is recorded as a plan
event on the owning network's :class:`~repro.network.stats.MessageStats`
(``plan_hit``/``plan_miss``, ``tree_hit``/``tree_miss``,
``route_hit``/``route_miss``).
"""

from __future__ import annotations

from typing import Callable, Dict, FrozenSet, Hashable, Optional, Tuple

from ..core.exceptions import UnknownNodeError
from ..obs.profile import PLAN_CACHE_WARM, phase
from .broadcast import DeliveryOutcome, multicast, unicast
from .faults import FaultPlan, surviving_graph
from .graph import Graph
from .routing import RoutingTable
from .stats import MessageStats

#: Plan-event keys recorded on :class:`MessageStats`.
PLAN_HIT = "plan_hit"
PLAN_MISS = "plan_miss"
TREE_HIT = "tree_hit"
TREE_MISS = "tree_miss"
ROUTE_HIT = "route_hit"
ROUTE_MISS = "route_miss"

#: Every plan-event kind, paired as (hit, miss) per cache family.
PLAN_EVENT_FAMILIES = {
    "plan": (PLAN_HIT, PLAN_MISS),
    "tree": (TREE_HIT, TREE_MISS),
    "route": (ROUTE_HIT, ROUTE_MISS),
}


def plan_hit_rates(events: Dict[str, int]) -> Dict[str, float]:
    """Per-cache-family hit rates from a plan-event counter dict.

    Accepts either :attr:`MessageStats.plan_events` or the baselined
    ``plan_cache`` dict a workload run reports; families with no traffic
    report a rate of 0.0.
    """
    rates = {}
    for family, (hit, miss) in PLAN_EVENT_FAMILIES.items():
        hits = events.get(hit, 0)
        total = hits + events.get(miss, 0)
        rates[family] = hits / total if total else 0.0
    return rates


class DeliveryPlanner:
    """Single source of routing truth for a :class:`~repro.network.Network`.

    Parameters
    ----------
    graph:
        The full (fault-free) communication graph.  Assumed static.
    routing:
        The network's fault-free routing table (shared, never rebuilt).
    faults:
        The network's fault plan; its ``revision`` counter keys every
        cache in this planner.
    stats:
        Where plan-cache hit/miss events are recorded.
    node_is_up:
        Liveness oracle for ``ideal``-mode plans (the network's
        :meth:`~repro.network.Network.node_is_up`, which also covers the
        node object's own liveness flag).
    """

    def __init__(
        self,
        graph: Graph,
        routing: RoutingTable,
        faults: FaultPlan,
        stats: MessageStats,
        node_is_up: Callable[[Hashable], bool],
    ) -> None:
        self._graph = graph
        self._routing = routing
        self._faults = faults
        self._stats = stats
        self._node_is_up = node_is_up
        self._revision = faults.revision
        self._surviving_graph: Optional[Graph] = None
        self._surviving_table: Optional[RoutingTable] = None
        self._trees: Dict[Hashable, Dict[Hashable, Hashable]] = {}
        self._plans: Dict[
            Tuple[Hashable, FrozenSet[Hashable], str], DeliveryOutcome
        ] = {}

    # -- revision tracking ---------------------------------------------------

    def _sync(self) -> None:
        """Drop every cache when the fault plan has moved on.

        Revisions are monotonic, so entries keyed under an older revision
        can never be served again — pruning keeps memory bounded by the
        traffic diversity of the *current* fault epoch.
        """
        revision = self._faults.revision
        if revision != self._revision:
            self._revision = revision
            self._surviving_graph = None
            self._surviving_table = None
            self._trees.clear()
            self._plans.clear()

    @property
    def revision(self) -> int:
        """The fault-plan revision the current caches are valid for."""
        return self._revision

    def clear_caches(self) -> None:
        """Forget every memoized plan, tree and surviving table.

        ``reset_for_reuse`` deliberately keeps these caches warm — plans
        are pure functions of the (static) graph and the fault revision,
        so same-topology cells in one sweep share them.  A *warm worker
        pool* reusing a network across separate ``run_matrix`` calls needs
        the opposite: the plan-cache hit/miss counters are part of every
        cell's reported results, so a recycled network must start exactly
        as cold as a freshly built one.  Hit/miss counters themselves live
        on :class:`MessageStats` and are untouched here.
        """
        self._revision = self._faults.revision
        self._surviving_graph = None
        self._surviving_table = None
        self._trees.clear()
        self._plans.clear()

    def cache_info(self) -> Dict[str, int]:
        """Sizes of the plan caches (hit/miss counters live on stats)."""
        self._sync()
        return {
            "plans": len(self._plans),
            "trees": len(self._trees),
            "revision": self._revision,
        }

    # -- shared routing state ------------------------------------------------

    def effective_graph(self) -> Graph:
        """The surviving subgraph (the full graph when fault-free)."""
        self._sync()
        if self._faults.fault_count == 0:
            return self._graph
        if self._surviving_graph is None:
            self._surviving_graph = surviving_graph(self._graph, self._faults)
        return self._surviving_graph

    def routing_table(self) -> RoutingTable:
        """The shared routing table over the surviving subgraph.

        This is the table ``unicast`` delivery, reply routing and payload
        routing all share; it is rebuilt at most once per fault revision
        — the headline fix over rebuilding one per message.  Route events
        are only recorded under active faults: the fault-free fast path
        serves the network's static table, which is not a cache.
        """
        self._sync()
        if self._faults.fault_count == 0:
            return self._routing
        if self._surviving_table is None:
            self._stats.record_plan_event(ROUTE_MISS)
            with phase(PLAN_CACHE_WARM):
                self._surviving_table = RoutingTable(self.effective_graph())
        else:
            self._stats.record_plan_event(ROUTE_HIT)
        return self._surviving_table

    def spanning_tree(self, source: Hashable) -> Dict[Hashable, Hashable]:
        """The memoized BFS parent tree rooted at ``source``.

        Empty when ``source`` is not in the surviving subgraph.
        """
        self._sync()
        tree = self._trees.get(source)
        if tree is None:
            self._stats.record_plan_event(TREE_MISS)
            effective = self.effective_graph()
            tree = (
                effective.spanning_tree(source) if source in effective else {}
            )
            self._trees[source] = tree
        else:
            self._stats.record_plan_event(TREE_HIT)
        return tree

    # -- full delivery plans -------------------------------------------------

    def plan(
        self,
        source: Hashable,
        targets: FrozenSet[Hashable],
        mode: str,
    ) -> DeliveryOutcome:
        """The delivery outcome for ``source -> targets`` under ``mode``.

        The returned :class:`DeliveryOutcome` is immutable and shared
        between calls; callers must not assume a fresh object.  The
        caller is responsible for having verified that ``source`` is up.
        """
        self._sync()
        key = (source, targets, mode)
        cached = self._plans.get(key)
        if cached is not None:
            self._stats.record_plan_event(PLAN_HIT)
            return cached
        self._stats.record_plan_event(PLAN_MISS)
        if mode == "ideal":
            outcome = self._plan_ideal(source, targets)
        elif mode == "unicast":
            outcome = self._plan_unicast(source, targets)
        elif mode == "multicast":
            outcome = self._plan_multicast(source, targets)
        else:
            raise ValueError(f"unknown delivery mode {mode!r}")
        self._plans[key] = outcome
        return outcome

    def _plan_ideal(
        self, source: Hashable, targets: FrozenSet[Hashable]
    ) -> DeliveryOutcome:
        reached = set()
        unreachable = set()
        hops = 0
        for destination in targets:
            if destination not in self._graph:
                raise UnknownNodeError(destination)
            if destination == source:
                reached.add(destination)
            elif self._node_is_up(destination):
                reached.add(destination)
                hops += 1
            else:
                unreachable.add(destination)
        return DeliveryOutcome(frozenset(reached), hops, frozenset(unreachable))

    def _plan_unicast(
        self, source: Hashable, targets: FrozenSet[Hashable]
    ) -> DeliveryOutcome:
        if self._faults.fault_count == 0:
            return unicast(self._graph, self._routing, source, targets)
        return unicast(
            self._graph,
            self._routing,
            source,
            targets,
            self._faults,
            surviving_table=self.routing_table(),
        )

    def _plan_multicast(
        self, source: Hashable, targets: FrozenSet[Hashable]
    ) -> DeliveryOutcome:
        return multicast(
            self._graph,
            source,
            targets,
            self._faults if self._faults.fault_count else None,
            parent=self.spanning_tree(source),
        )
