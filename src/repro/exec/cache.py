"""Content-addressed per-cell result caching — build-system semantics.

Every matrix cell is a pure function of its spec: the seed derives from
the grid coordinates (:func:`~repro.workload.spec.stable_seed`), the
random streams derive from the seed, and the driver resets its network
before running.  That makes cell results cacheable the way a build system
caches object files: key them by content, store the ``CellResult`` JSON,
and a re-run of a 1000-cell grid after editing one regime only recomputes
the changed cells.

One wrinkle keeps the key from being *just* the spec digest: with shared
networks (the default), a cell's ``plan_cache`` hit/miss counters — which
are part of its reported result — depend on which same-topology cells ran
before it and warmed the planner's fault-free caches.  The key therefore
chains: each cell's key folds in a running digest of every *predecessor*
cell spec on its topology, so a cached entry is only served when the
entire warm-up prefix is identical too.  When a mid-group cell misses,
:class:`IncrementalRunner` replays the cache-served predecessors first
(cheap cells, no I/O), so the recomputed cell sees exactly the planner
state the sequential cold run would have given it.  With
``share_networks=False`` the chain is empty and keys are pure per-cell
content addresses.

Cache entries are one JSON file per key under ``root/<key[:2]>/<key>.json``
written via a temp file + atomic rename; stale (schema or key mismatch)
and corrupt (undecodable) entries are counted and recomputed, never fatal.
Hit/miss/stale/corrupt counters live in a
:class:`~repro.obs.registry.MetricsRegistry` and surface through the
report's digest-excluded ``cache`` section and the ``--obs`` export.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..network.simulator import Network
from ..obs.profile import CACHE_WARMUP, phase
from ..obs.registry import Counter, MetricsRegistry
from ..workload.matrix import CellResult, MatrixCell

#: Bump on any change to the cached payload's meaning: the CellResult
#: schema, the driver's semantics, the chain construction.  Part of every
#: key, so a bump orphans (rather than misreads) old entries.
CACHE_SCHEMA_VERSION = 1

#: Counter names a cache tracks (also the report's ``cache`` section keys).
CACHE_COUNTERS = ("hits", "misses", "stale", "corrupt", "stored", "warmups")


class CacheError(ValueError):
    """A cache entry contradicts a live recomputation (poisoned cache)."""


def spec_fingerprint(cell: MatrixCell) -> str:
    """SHA-256 over one cell's full identity (spec, coordinates, seed).

    The seed is already a pure function of the coordinates, but it rides
    along explicitly so a change to the derivation itself also moves every
    fingerprint.
    """
    payload = {
        "spec": cell.spec.to_dict(),
        "topology": cell.topology,
        "strategy": cell.strategy,
        "regime": cell.regime,
        "key": cell.key,
        "seed": cell.spec.seed,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


def cell_cache_key(
    cell: MatrixCell,
    chain: str = "",
    schema_version: int = CACHE_SCHEMA_VERSION,
) -> str:
    """The content address for one cell's result.

    ``chain`` is the running digest of the cell's same-topology
    predecessors (empty without shared networks); ``schema_version``
    participates so format bumps can never serve old payloads.
    """
    payload = {
        "schema": schema_version,
        "cell": spec_fingerprint(cell),
        "chain": chain,
    }
    blob = json.dumps(payload, sort_keys=True).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


class CellKeyer:
    """Derives chained cache keys for cells visited in execution order.

    Feed it every cell of a grid (or of one topology-affine shard — the
    per-topology subsequences are identical, which is why sequential and
    sharded runs share cache entries) and it returns each cell's key while
    advancing that topology's chain.  The chain advances on every cell,
    hit or miss: warm planner state moves whenever a cell runs, whether or
    not this particular pass actually executed it.
    """

    def __init__(
        self,
        share_networks: bool = True,
        schema_version: int = CACHE_SCHEMA_VERSION,
    ) -> None:
        self._share = share_networks
        self._schema = schema_version
        self._chains: Dict[str, str] = {}

    def key(self, cell: MatrixCell) -> str:
        """The cache key for ``cell`` at this point in the visit order."""
        chain = self._chains.get(cell.topology, "") if self._share else ""
        key = cell_cache_key(cell, chain=chain, schema_version=self._schema)
        if self._share:
            advanced = chain + spec_fingerprint(cell)
            self._chains[cell.topology] = hashlib.sha256(
                advanced.encode("utf-8")
            ).hexdigest()
        return key


class CellCache:
    """A content-addressed store of :class:`CellResult` JSON payloads.

    Instances are cheap (no index is kept in memory; the filesystem is the
    index) and safe to create per run or per worker over one shared
    ``root``: writers land entries with a temp file + ``os.replace``, and
    distinct keys never collide.  Tolerance is total — a stale or corrupt
    entry counts itself and reads as a miss, so the worst a damaged cache
    dir can do is cost a recomputation.
    """

    def __init__(
        self,
        root,
        schema_version: int = CACHE_SCHEMA_VERSION,
        registry: Optional[MetricsRegistry] = None,
    ) -> None:
        self.root = Path(root)
        self.schema_version = schema_version
        self.registry = registry if registry is not None else MetricsRegistry()
        self._counters: Dict[str, Counter] = {
            name: self.registry.counter(f"cache_{name}")
            for name in CACHE_COUNTERS
        }

    def count(self, name: str, amount: int = 1) -> None:
        """Bump one of the :data:`CACHE_COUNTERS`."""
        self._counters[name].inc(amount)

    def stats(self) -> Dict[str, int]:
        """Counter snapshot, one int per :data:`CACHE_COUNTERS` entry."""
        return {
            name: int(self._counters[name].value) for name in CACHE_COUNTERS
        }

    def path_for(self, key: str) -> Path:
        """Where ``key``'s entry lives (two-level fan-out, git-object
        style)."""
        return self.root / key[:2] / f"{key}.json"

    def load(self, key: str) -> Optional[CellResult]:
        """The cached result under ``key``, or ``None`` (miss/stale/
        corrupt)."""
        path = self.path_for(key)
        try:
            with open(path, "r", encoding="utf-8") as fp:
                payload = json.load(fp)
        except FileNotFoundError:
            self.count("misses")
            return None
        except (OSError, ValueError):
            self.count("corrupt")
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != self.schema_version
            or payload.get("key") != key
        ):
            self.count("stale")
            return None
        try:
            cell_result = CellResult.from_dict(payload["cell"])
        except (KeyError, TypeError, ValueError):
            self.count("corrupt")
            return None
        self.count("hits")
        return cell_result

    def store(self, key: str, cell_result: CellResult) -> Path:
        """Persist ``cell_result`` under ``key`` (atomic, last write
        wins)."""
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": self.schema_version,
            "key": key,
            "cell": cell_result.to_dict(),
        }
        # Unique temp name: concurrent runs over one cache dir may race on
        # the same key, and each must rename a fully written file.
        tmp = path.parent / f"{path.name}.{os.getpid()}.tmp"
        with open(tmp, "w", encoding="utf-8") as fp:
            json.dump(payload, fp, indent=2, sort_keys=True)
            fp.write("\n")
        os.replace(tmp, path)
        self.count("stored")
        return path


def merge_cache_stats(totals: Dict[str, int], stats: Dict[str, int]) -> None:
    """Fold one worker's counter snapshot into ``totals`` (associative)."""
    for name, value in stats.items():
        totals[name] = totals.get(name, 0) + int(value)


def canonical_cell_payload(cell_result: CellResult) -> Dict[str, object]:
    """A cell's payload with its (nondeterministic) wall clock dropped."""
    payload = cell_result.to_dict()
    payload.pop("wall_seconds", None)
    return payload


class IncrementalRunner:
    """Drives cache consultation for one in-order pass over a grid.

    Both execution loops — the sequential engine and each parallel shard —
    visit their cells in grid expansion order and ask, per cell:
    :meth:`lookup` (may serve a cached result), :meth:`warmup` (before
    executing a miss, replay the cache-served same-topology predecessors so
    the shared network's planner state matches the cold sequential run),
    and :meth:`record` (store what just ran).

    ``reads=False`` keeps the cache write-through only: runs that must
    produce per-cell artifacts (kept results, traces, the obs export)
    cannot serve cells from a store that holds only ``CellResult`` JSON,
    but they still populate it for later plain runs.
    """

    def __init__(
        self,
        cache: CellCache,
        share_networks: bool = True,
        reads: bool = True,
    ) -> None:
        self.cache = cache
        self._share = share_networks
        self._reads = reads
        self._keyer = CellKeyer(share_networks, cache.schema_version)
        self._pending: Dict[str, List[Tuple[MatrixCell, CellResult]]] = {}
        self._key: Optional[str] = None

    def lookup(self, cell: MatrixCell) -> Optional[CellResult]:
        """Serve ``cell`` from the cache, or ``None`` to execute it."""
        self._key = self._keyer.key(cell)
        if not self._reads:
            return None
        cached = self.cache.load(self._key)
        if cached is not None and self._share:
            # Served but not executed: if a later same-topology cell
            # misses, this cell must be replayed first to warm the network.
            self._pending.setdefault(cell.topology, []).append((cell, cached))
        return cached

    def warmup(self, cell: MatrixCell, network: Optional[Network]) -> None:
        """Replay pending cache-served predecessors on ``cell``'s topology.

        Runs them in their original order over the shared ``network``,
        discarding outputs — except to cross-check each replay against the
        entry the cache served: a disagreement means the store was poisoned
        (hand-edited, or written by semantically different code under the
        same schema version), and silently proceeding would have already
        put the wrong result in this run's report.
        """
        if network is None:
            return
        from ..workload.matrix import run_cell  # local: avoids import cycle

        for earlier, served in self._pending.pop(cell.topology, []):
            with phase(CACHE_WARMUP):
                replayed, _ = run_cell(earlier, network=network)
            self.cache.count("warmups")
            if canonical_cell_payload(replayed) != \
                    canonical_cell_payload(served):
                raise CacheError(
                    f"cache entry for cell {earlier.spec.name!r} does not "
                    f"match its recomputation — the cache dir "
                    f"{self.cache.root} is poisoned; delete it (or bump "
                    f"CACHE_SCHEMA_VERSION) and re-run"
                )

    def record(self, cell_result: CellResult) -> None:
        """Store the result of the cell most recently given to
        :meth:`lookup`."""
        if self._key is not None:
            self.cache.store(self._key, cell_result)
            self._key = None
