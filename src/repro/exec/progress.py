"""Progress and ETA reporting for long matrix runs.

A :class:`ProgressReporter` is the ``progress(done, total)`` callback the
execution engine accepts: it renders a single carriage-return-overwritten
line with percentage, elapsed wall clock and a rate-based ETA.  Output is
throttled so spool polling (several times a second) never floods a log,
and the final update always lands with a newline.

When the stream is not a terminal (CI logs, ``2> progress.log``), the
in-place ``\\r`` rewrite would smear every update onto one unreadable
line; the reporter detects that and emits plain newline-delimited
updates instead, throttled harder so captured logs stay short.
"""

from __future__ import annotations

import sys
import time
from typing import Optional, TextIO


def format_seconds(seconds: float) -> str:
    """Compact ``12s`` / ``3m04s`` / ``1h02m`` rendering."""
    seconds = max(0.0, seconds)
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class ProgressReporter:
    """Callable progress sink: ``reporter(done, total)``."""

    #: Non-TTY throttle: one line per this many seconds is plenty for a log.
    PLAIN_INTERVAL = 1.0

    def __init__(
        self,
        stream: Optional[TextIO] = None,
        label: str = "cells",
        min_interval: float = 0.1,
    ) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._label = label
        # In-place \r updates only make sense on a real terminal; anywhere
        # else (CI, redirected stderr) fall back to one plain line per
        # update, throttled to at most one per PLAIN_INTERVAL.
        self._tty = bool(getattr(self._stream, "isatty", lambda: False)())
        if not self._tty:
            min_interval = max(min_interval, self.PLAIN_INTERVAL)
        self._min_interval = min_interval
        self._started: Optional[float] = None
        self._last_emit = float("-inf")
        self._last_done = -1
        self._widest = 0

    def __call__(self, done: int, total: int) -> None:
        now = time.monotonic()
        if self._started is None:
            self._started = now
        if done == self._last_done:
            return
        finished = total > 0 and done >= total
        if now - self._last_emit < self._min_interval and not finished:
            return
        self._last_emit = now
        self._last_done = done
        elapsed = now - self._started
        percent = (100 * done // total) if total else 100
        if done and total and done < total:
            eta = f" eta {format_seconds(elapsed * (total - done) / done)}"
        else:
            eta = ""
        body = (
            f"{self._label} {done}/{total} ({percent}%) "
            f"elapsed {format_seconds(elapsed)}{eta}"
        )
        if self._tty:
            line = "\r" + body
            # Pad to the widest line so far, so a shrinking render (ETA
            # column disappearing at 100%) never leaves stale characters
            # behind.
            self._widest = max(self._widest, len(line))
            line = line.ljust(self._widest)
            self._stream.write(line + ("\n" if finished else ""))
        else:
            self._stream.write(body + "\n")
        self._stream.flush()
