"""Warm worker pools: persistent processes and per-topology networks.

``run_matrix_parallel`` normally pays two fixed costs per call: spinning
up a fresh ``ProcessPoolExecutor`` (process forks, imports) and building
every topology's network from scratch inside each worker (the O(n²)
routing-table construction).  For one-shot runs that is correct; for
sweep drivers, benchmarks and the CLI ``--repeat`` path that run grid
after grid in one process, it is the whole reason E18 measured a
parallel "speedup" below 1x.

:class:`WarmPool` keeps both warm:

* **processes** — one lazily created executor survives across
  ``run_matrix_parallel(..., pool=...)`` calls until :meth:`close` (or the
  ``with`` block) shuts it down;
* **networks** — each worker process keeps the networks it has built in a
  module-level store keyed by ``(topology, delivery_mode)``.  On the next
  run that lands a shard with the same topology on that worker,
  :func:`checkout_network` recycles the stored network through
  :meth:`~repro.network.Network.reset_to_cold`, which keeps the graph and
  static routing table (the expensive part, and counter-neutral: the
  fault-free fast path records no plan events) while clearing the
  planner's memoized plans — so a recycled network is
  counter-indistinguishable from a freshly built one and report digests
  cannot drift.

Invalidation is explicit and generation-based: :meth:`WarmPool.invalidate`
bumps a generation token that rides in every shard payload; a worker
seeing a new generation drops its whole store before serving.  Call it
when the *meaning* of a topology name changes (e.g. code reload in a
long-lived driver); ordinary spec changes never need it, because the
driver resets the network before every cell anyway.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Tuple

from ..network.simulator import Network
from ..workload.matrix import shared_network_for
from ..workload.spec import ScenarioSpec
from .plan import resolve_workers

#: Worker-process-global network store: ``(topology, delivery_mode)`` ->
#: the network built for it, surviving across shard tasks.
_WORKER_NETWORKS: Dict[Tuple[str, str], Network] = {}

#: The pool generation the store was populated under (``None`` = never).
_WORKER_GENERATION: Optional[int] = None


def _bump(stats: Optional[Dict[str, int]], name: str) -> None:
    if stats is not None:
        stats[name] = stats.get(name, 0) + 1


def checkout_network(
    networks: Dict[str, Network],
    spec: ScenarioSpec,
    generation: Optional[int],
    stats: Optional[Dict[str, int]] = None,
) -> Network:
    """The shared network for ``spec``, preferring the worker's warm store.

    ``networks`` is the shard-task-local dict (reuse *within* one run —
    the planner caches deliberately stay warm across same-topology cells,
    exactly like the sequential engine).  ``generation`` is the warm
    pool's token, or ``None`` when pooling is off, in which case this is
    plain :func:`~repro.workload.matrix.shared_network_for`.  A warm
    network found in the store is recycled through ``reset_to_cold`` so
    its planner counters restart from zero.
    """
    network = networks.get(spec.topology)
    if network is not None:
        return network
    if generation is not None:
        global _WORKER_GENERATION
        if generation != _WORKER_GENERATION:
            _WORKER_NETWORKS.clear()
            _WORKER_GENERATION = generation
        warm = _WORKER_NETWORKS.get((spec.topology, spec.delivery_mode))
        if warm is not None:
            warm.reset_to_cold()
            networks[spec.topology] = warm
            _bump(stats, "pool_network_reuses")
            return warm
    network = shared_network_for(networks, spec)
    if generation is not None:
        _WORKER_NETWORKS[(spec.topology, spec.delivery_mode)] = network
        _bump(stats, "pool_network_builds")
    return network


class WarmPool:
    """A persistent executor whose workers keep their networks warm.

    Use as a context manager around successive parallel runs::

        with WarmPool(workers=4) as pool:
            first, _ = run_matrix_parallel(grid_a, pool=pool)
            second, _ = run_matrix_parallel(grid_b, pool=pool)

    Both runs share one set of worker processes; any topology a worker
    already built is recycled cold.  Reports are byte-identical
    (:meth:`~repro.workload.matrix.MatrixReport.digest`) to one-shot runs.
    """

    def __init__(self, workers: Optional[int] = None) -> None:
        self._workers = resolve_workers(workers or 0)
        self._generation = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def workers(self) -> int:
        """The resolved worker-process count."""
        return self._workers

    @property
    def generation(self) -> int:
        """The current invalidation generation (grows monotonically)."""
        return self._generation

    @property
    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created on first use."""
        if self._executor is None:
            self._executor = ProcessPoolExecutor(max_workers=self._workers)
        return self._executor

    def invalidate(self) -> None:
        """Force every worker to rebuild its networks on next checkout."""
        self._generation += 1

    def close(self) -> None:
        """Shut the executor down; the pool may be lazily reused after."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "WarmPool":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "live" if self._executor is not None else "idle"
        return (
            f"WarmPool(workers={self._workers}, "
            f"generation={self._generation}, {state})"
        )
