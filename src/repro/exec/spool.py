"""JSONL result spools: workers stream cells out, the parent merges.

Each shard owns one append-only spool file; every completed cell becomes
one self-contained JSON line tagged with its grid position.  The parent
counts complete lines for live progress (a line is only counted once its
newline landed, so a worker caught mid-write never yields a torn record)
and, after the pool drains, loads every spool and sorts by position — that
sort *is* the deterministic merge.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, List, Tuple

from ..workload.matrix import CellResult


def shard_spool_path(directory, shard_index: int) -> Path:
    """Where shard ``shard_index`` spools its results."""
    return Path(directory) / f"shard-{shard_index:03d}.jsonl"


def dump_spool_line(position: int, cell_result: CellResult) -> str:
    """One cell as one newline-terminated JSON record."""
    record = {"position": position, "cell": cell_result.to_dict()}
    return json.dumps(record, sort_keys=True) + "\n"


def load_spool(path) -> List[Tuple[int, CellResult]]:
    """Read every complete record of one spool file."""
    entries: List[Tuple[int, CellResult]] = []
    with open(path, "r", encoding="utf-8") as fp:
        for line in fp:
            if not line.endswith("\n"):
                break  # torn final record: writer died mid-line
            record = json.loads(line)
            entries.append(
                (int(record["position"]), CellResult.from_dict(record["cell"]))
            )
    return entries


def count_spooled(paths: Iterable) -> int:
    """Complete records across ``paths`` (missing files count zero).

    Cheap enough to poll: spools hold one short line per matrix cell.
    """
    done = 0
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as fp:
                done += sum(1 for line in fp if line.endswith("\n"))
        except FileNotFoundError:
            continue
    return done
