"""JSONL result spools: workers stream cells out, the parent merges.

Each shard owns one append-only spool file; every completed cell becomes
one self-contained JSON line tagged with its grid position.  The parent
counts complete lines for live progress (a line is only counted once its
newline landed, so a worker caught mid-write never yields a torn record)
and, after the pool drains, loads every spool and sorts by position — that
sort *is* the deterministic merge.

Two durability rules govern reads:

* a torn record is only legal at EOF (the writer died mid-line); anything
  malformed *before* the last line is corruption and raises
  :class:`SpoolError` naming the file and line, rather than silently
  dropping every later record;
* progress polling goes through :class:`SpoolCursor`, which remembers a
  byte offset past the last counted newline per file and reads only the
  appended bytes — O(new data) per poll instead of re-reading every spool
  in full each tick.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from ..workload.matrix import CellResult


class SpoolError(RuntimeError):
    """A spool file is corrupt, or two spools disagree about one cell."""


def shard_spool_path(directory, shard_index: int) -> Path:
    """Where shard ``shard_index`` spools its results."""
    return Path(directory) / f"shard-{shard_index:03d}.jsonl"


def dump_spool_line(position: int, cell_result: CellResult) -> str:
    """One cell as one newline-terminated JSON record."""
    record = {"position": position, "cell": cell_result.to_dict()}
    return json.dumps(record, sort_keys=True) + "\n"


def load_spool(path) -> List[Tuple[int, CellResult]]:
    """Read every complete record of one spool file.

    A final line missing its newline is the writer's torn tail and is
    ignored; any other malformed record — undecodable JSON, a missing
    ``position``/``cell`` field — is corruption and raises
    :class:`SpoolError` with the file and line number, because silently
    truncating there would misreport cells that *are* on disk as missing.
    """
    entries: List[Tuple[int, CellResult]] = []
    with open(path, "r", encoding="utf-8") as fp:
        lines = fp.readlines()
    for number, line in enumerate(lines):
        if not line.endswith("\n"):
            if number == len(lines) - 1:
                break  # torn final record: writer died mid-line
            raise SpoolError(
                f"{path}: record on line {number + 1} is torn mid-file "
                f"(only the final record may be incomplete)"
            )
        try:
            record = json.loads(line)
            entries.append(
                (int(record["position"]), CellResult.from_dict(record["cell"]))
            )
        except (ValueError, KeyError, TypeError) as error:
            raise SpoolError(
                f"{path}: corrupt spool record on line {number + 1}: {error}"
            ) from error
    return entries


class SpoolCursor:
    """Incremental complete-record counter over a fixed set of spool files.

    The parent polls spools several times a second while workers run; a
    cursor keeps per-file byte offsets just past the last newline it has
    counted, so each poll reads only what workers appended since the
    previous one.  Bytes after the last newline (a record mid-write) are
    re-read on the next poll, once their newline lands.
    """

    def __init__(self, paths: Iterable) -> None:
        self._paths = [Path(path) for path in paths]
        self._offsets: Dict[Path, int] = {path: 0 for path in self._paths}
        self._counts: Dict[Path, int] = {path: 0 for path in self._paths}

    def count(self) -> int:
        """Complete records seen so far (missing files count zero)."""
        for path in self._paths:
            try:
                with open(path, "rb") as fp:
                    fp.seek(self._offsets[path])
                    chunk = fp.read()
            except FileNotFoundError:
                continue
            if not chunk:
                continue
            complete = chunk.rfind(b"\n") + 1
            if complete:
                self._counts[path] += chunk.count(b"\n", 0, complete)
                self._offsets[path] += complete
        return sum(self._counts.values())


def count_spooled(paths: Iterable) -> int:
    """Complete records across ``paths``, counted in one shot.

    One-off convenience over :class:`SpoolCursor`; pollers should hold a
    cursor so repeated counts only read appended bytes.
    """
    return SpoolCursor(paths).count()
