"""The parallel execution engine: sharded multi-process matrix runs.

A scenario-matrix grid is embarrassingly parallel per cell — every cell's
random streams derive from a stable hash of its grid coordinates, so no
cell can observe another.  The only cross-cell state is deliberate: cells
sharing a topology reuse one :class:`~repro.network.Network` (and its
routing tables and delivery-plan caches) through ``reset_for_reuse``, which
leaves per-cell *metrics* untouched but makes the warm-cache *counters*
depend on which same-topology cells ran before.

:class:`ExecutionPlan` therefore shards cells across worker processes with
**topology affinity**: a topology's cells never split across shards and
stay in grid expansion order, so each worker replays exactly the warm-up
sequence the sequential engine would — which is what makes the merged
:class:`~repro.workload.matrix.MatrixReport` byte-identical
(:meth:`~repro.workload.matrix.MatrixReport.digest`) to a sequential run at
any worker count.  Workers stream per-cell results into JSONL spool files;
the parent polls the spools for progress/ETA and merges them by grid
position.  ``python -m repro`` exposes the engine on the command line.
"""

from .plan import ExecutionPlan, IndexedCell, Shard
from .progress import ProgressReporter
from .runner import run_matrix_parallel
from .spool import count_spooled, dump_spool_line, load_spool, shard_spool_path

__all__ = [
    "ExecutionPlan",
    "IndexedCell",
    "ProgressReporter",
    "Shard",
    "count_spooled",
    "dump_spool_line",
    "load_spool",
    "run_matrix_parallel",
    "shard_spool_path",
]
