"""The parallel execution engine: sharded multi-process matrix runs.

A scenario-matrix grid is embarrassingly parallel per cell — every cell's
random streams derive from a stable hash of its grid coordinates, so no
cell can observe another.  The only cross-cell state is deliberate: cells
sharing a topology reuse one :class:`~repro.network.Network` (and its
routing tables and delivery-plan caches) through ``reset_for_reuse``, which
leaves per-cell *metrics* untouched but makes the warm-cache *counters*
depend on which same-topology cells ran before.

:class:`ExecutionPlan` therefore shards cells across worker processes with
**topology affinity**: a topology's cells never split across shards and
stay in grid expansion order, so each worker replays exactly the warm-up
sequence the sequential engine would — which is what makes the merged
:class:`~repro.workload.matrix.MatrixReport` byte-identical
(:meth:`~repro.workload.matrix.MatrixReport.digest`) to a sequential run at
any worker count.  Workers stream per-cell results into JSONL spool files;
the parent polls the spools for progress/ETA and merges them by grid
position.  ``python -m repro`` exposes the engine on the command line.

Two layers make repeated sweeps cheap without bending any of the above:
the content-addressed :class:`~repro.exec.cache.CellCache` serves
unchanged cells from disk (chain-keyed so warm plan-cache counters still
reproduce — see :mod:`repro.exec.cache`), and
:class:`~repro.exec.pool.WarmPool` keeps worker processes and their
per-topology networks alive across successive runs.  Both are
digest-neutral by construction.
"""

from .cache import (
    CACHE_SCHEMA_VERSION,
    CacheError,
    CellCache,
    CellKeyer,
    IncrementalRunner,
    cell_cache_key,
    spec_fingerprint,
)
from .plan import ExecutionPlan, IndexedCell, Shard
from .pool import WarmPool
from .progress import ProgressReporter
from .runner import run_matrix_parallel
from .spool import (
    SpoolCursor,
    SpoolError,
    count_spooled,
    dump_spool_line,
    load_spool,
    shard_spool_path,
)

__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheError",
    "CellCache",
    "CellKeyer",
    "ExecutionPlan",
    "IncrementalRunner",
    "IndexedCell",
    "ProgressReporter",
    "Shard",
    "SpoolCursor",
    "SpoolError",
    "WarmPool",
    "cell_cache_key",
    "count_spooled",
    "dump_spool_line",
    "load_spool",
    "run_matrix_parallel",
    "shard_spool_path",
    "spec_fingerprint",
]
