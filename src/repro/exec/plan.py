"""Sharding a matrix grid across workers, with topology affinity.

The plan is a pure function of ``(matrix, workers)``: expansion assigns
every runnable cell a *position* (its index in grid expansion order, which
is the order the sequential engine runs and reports cells in), consecutive
same-topology cells form *groups*, and groups are distributed over shards
by longest-processing-time-first so shard loads balance.  Two invariants
carry the engine's determinism guarantee:

* a topology's cells all land in one shard, in expansion order — each
  worker warms its shared network exactly as the sequential loop would, so
  plan-cache counters (which are part of the report) reproduce exactly;
* shard composition and order depend only on the grid and the worker
  count, never on timing.

Affinity bounds useful parallelism at the number of distinct topologies;
planning more workers than topologies just leaves shards empty, so the
plan clamps itself.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..workload.matrix import MatrixCell, MatrixSpec


@dataclass(frozen=True)
class IndexedCell:
    """A runnable cell tagged with its grid expansion position.

    ``position`` is the cell's index in the *sequential* execution order;
    the merge sorts spooled results by it, which is the whole merge.
    """

    position: int
    cell: MatrixCell


@dataclass(frozen=True)
class Shard:
    """One worker's slice of the grid: whole topology groups, in order."""

    index: int
    cells: Tuple[IndexedCell, ...]

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def topologies(self) -> Tuple[str, ...]:
        """The distinct topologies this shard owns, in execution order."""
        seen: List[str] = []
        for indexed in self.cells:
            if indexed.cell.topology not in seen:
                seen.append(indexed.cell.topology)
        return tuple(seen)


def resolve_workers(workers: int) -> int:
    """Normalize a worker-count request (``0``/``None`` means all CPUs)."""
    if not workers:
        return os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be >= 0, got {workers}")
    return workers


class ExecutionPlan:
    """A deterministic assignment of matrix cells to worker shards."""

    def __init__(
        self,
        matrix: MatrixSpec,
        shards: Tuple[Shard, ...],
        skipped: List[Dict[str, str]],
    ) -> None:
        self.matrix = matrix
        self.shards = shards
        self.skipped = skipped

    @property
    def cell_count(self) -> int:
        """Total runnable cells across every shard."""
        return sum(len(shard) for shard in self.shards)

    @classmethod
    def from_matrix(cls, matrix: MatrixSpec, workers: int) -> "ExecutionPlan":
        """Expand ``matrix`` and pack its topology groups into shards.

        Groups are placed largest-first onto the currently least-loaded
        shard (ties broken by shard index), then each shard's groups are
        reordered by first grid position so intra-shard execution order is
        independent of packing order.
        """
        cells, skipped = matrix.expand()
        groups: Dict[str, List[IndexedCell]] = {}
        for position, cell in enumerate(cells):
            groups.setdefault(cell.topology, []).append(
                IndexedCell(position, cell)
            )
        shard_count = min(resolve_workers(workers), len(groups))
        if not shard_count:
            return cls(matrix, (), skipped)
        # Largest group first; first-position tiebreak keeps packing stable
        # when two topologies have equally many cells.
        ordered = sorted(
            groups.values(), key=lambda group: (-len(group), group[0].position)
        )
        bins: List[List[List[IndexedCell]]] = [[] for _ in range(shard_count)]
        loads = [0] * shard_count
        for group in ordered:
            target = loads.index(min(loads))
            bins[target].append(group)
            loads[target] += len(group)
        shards = []
        for index, groups_in_bin in enumerate(bins):
            groups_in_bin.sort(key=lambda group: group[0].position)
            flat = tuple(
                indexed for group in groups_in_bin for indexed in group
            )
            shards.append(Shard(index=index, cells=flat))
        return cls(matrix, tuple(shards), skipped)

    def describe(self) -> List[Dict[str, object]]:
        """One row per shard (cells and topologies) for logs and the CLI."""
        return [
            {
                "shard": shard.index,
                "cells": len(shard),
                "topologies": list(shard.topologies),
            }
            for shard in self.shards
        ]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        sizes = [len(shard) for shard in self.shards]
        return f"ExecutionPlan(shards={sizes}, skipped={len(self.skipped)})"
