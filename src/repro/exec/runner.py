"""The process-pool matrix runner and its deterministic merge.

Each shard runs in its own worker process (real parallelism — no GIL
sharing) through :func:`_run_shard`, which is deliberately a thin loop
around :func:`repro.workload.matrix.run_cell` and the same per-topology
shared-network helper the sequential engine uses.  Workers stream each
finished cell into their JSONL spool; the parent polls the spools while
the pool drains (that is the progress/ETA feed) and then merges all spool
records by grid position into a :class:`~repro.workload.matrix.MatrixReport`
whose canonical JSON is byte-identical to the sequential run's.

Payloads crossing the process boundary are plain picklable data:
``(position, MatrixCell)`` pairs outbound, and — only when callers ask to
keep full results — ``WorkloadResult`` objects inbound, which pickle
cleanly because results never reference a live ``Network`` or planner.
"""

from __future__ import annotations

import shutil
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..network.simulator import Network
from ..workload.driver import WorkloadResult
from ..workload.matrix import (
    CellResult,
    MatrixCell,
    MatrixReport,
    MatrixSpec,
    run_cell,
    shared_network_for,
    write_cell_trace,
)
from .plan import ExecutionPlan
from .spool import count_spooled, dump_spool_line, load_spool, shard_spool_path

#: How often the parent polls spool files for progress while workers run.
POLL_SECONDS = 0.2

#: One shard's payload: everything a worker needs, all picklable.
ShardPayload = Tuple[
    int,                                # shard index
    str,                                # spool file path
    bool,                               # share_networks
    bool,                               # keep_results
    Optional[str],                      # trace_dir
    Tuple[Tuple[int, MatrixCell], ...], # (position, cell) pairs
]


def _run_shard(
    payload: ShardPayload,
) -> Tuple[int, List[Tuple[int, WorkloadResult]]]:
    """Worker entry point: run one shard's cells, spooling as they finish.

    Top-level (not a closure) so it pickles under the ``spawn`` start
    method as well as ``fork``.  Cells execute in the given order over
    per-topology shared networks — the exact warm-up sequence the
    sequential engine produces for these cells.
    """
    shard_index, spool_path, share_networks, keep_results, trace_dir, cells = (
        payload
    )
    networks: Dict[str, Network] = {}
    kept: List[Tuple[int, WorkloadResult]] = []
    with open(spool_path, "w", encoding="utf-8") as fp:
        for position, cell in cells:
            network: Optional[Network] = None
            if share_networks:
                network = shared_network_for(networks, cell.spec)
            cell_result, result = run_cell(cell, network=network)
            fp.write(dump_spool_line(position, cell_result))
            fp.flush()  # stream: the parent polls for progress
            if trace_dir is not None:
                write_cell_trace(trace_dir, position, result)
            if keep_results:
                kept.append((position, result))
    return shard_index, kept


def run_matrix_parallel(
    matrix: MatrixSpec,
    workers: Optional[int] = None,
    share_networks: bool = True,
    keep_results: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    trace_dir=None,
    spool_dir=None,
) -> Tuple[MatrixReport, List[WorkloadResult]]:
    """Run ``matrix`` across worker processes; merge deterministically.

    The report is byte-identical (:meth:`MatrixReport.digest`) to
    ``run_matrix(matrix, share_networks=share_networks)`` at any worker
    count.  ``workers=0``/``None`` means one per CPU; grids that plan to a
    single shard run sequentially in-process (no pool overhead).  Pass
    ``spool_dir`` to keep the JSONL spool files; by default they live in a
    temporary directory removed after the merge.
    """
    from ..workload.matrix import run_matrix  # local: avoids import cycle

    plan = ExecutionPlan.from_matrix(matrix, workers or 0)
    if len(plan.shards) <= 1:
        report, results = run_matrix(
            matrix,
            share_networks=share_networks,
            keep_results=keep_results,
            progress=progress,
            trace_dir=trace_dir,
        )
        if spool_dir is not None:
            # Honour the requested artifact even when the grid collapsed to
            # one in-process shard: same file name, same line format.
            spool_root = Path(spool_dir)
            spool_root.mkdir(parents=True, exist_ok=True)
            with open(
                shard_spool_path(spool_root, 0), "w", encoding="utf-8"
            ) as fp:
                for position, cell_result in enumerate(report.cells):
                    fp.write(dump_spool_line(position, cell_result))
        return report, results
    own_spool = spool_dir is None
    spool_root = Path(
        tempfile.mkdtemp(prefix="repro-spool-") if own_spool else spool_dir
    )
    spool_root.mkdir(parents=True, exist_ok=True)
    spool_paths = [
        shard_spool_path(spool_root, shard.index) for shard in plan.shards
    ]
    payloads: List[ShardPayload] = [
        (
            shard.index,
            str(shard_spool_path(spool_root, shard.index)),
            share_networks,
            keep_results,
            str(trace_dir) if trace_dir is not None else None,
            tuple((indexed.position, indexed.cell) for indexed in shard.cells),
        )
        for shard in plan.shards
    ]
    total = plan.cell_count
    kept: Dict[int, WorkloadResult] = {}
    try:
        with ProcessPoolExecutor(max_workers=len(plan.shards)) as pool:
            pending = {pool.submit(_run_shard, payload) for payload in payloads}
            while pending:
                done, pending = wait(
                    pending, timeout=POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                if progress is not None:
                    progress(min(count_spooled(spool_paths), total), total)
                for future in done:
                    _, shard_kept = future.result()  # reraise worker errors
                    kept.update(shard_kept)
        if progress is not None:
            progress(total, total)
        merged: Dict[int, CellResult] = {}
        for path in spool_paths:
            merged.update(load_spool(path))
        if sorted(merged) != list(range(total)):
            missing = sorted(set(range(total)) - set(merged))
            raise RuntimeError(
                f"parallel merge incomplete: spool is missing cells {missing}"
            )
        cells = [merged[position] for position in range(total)]
    finally:
        if own_spool:
            shutil.rmtree(spool_root, ignore_errors=True)
    results = [kept[position] for position in sorted(kept)] if keep_results \
        else []
    report = MatrixReport(matrix.to_dict(), cells, plan.skipped)
    return report, results
