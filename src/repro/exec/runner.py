"""The process-pool matrix runner and its deterministic merge.

Each shard runs in its own worker process (real parallelism — no GIL
sharing) through :func:`_run_shard`, which is deliberately a thin loop
around :func:`repro.workload.matrix.run_cell` and the same per-topology
shared-network helper the sequential engine uses.  Workers stream each
finished cell into their JSONL spool; the parent polls the spools while
the pool drains (that is the progress/ETA feed) and then merges all spool
records by grid position into a :class:`~repro.workload.matrix.MatrixReport`
whose canonical JSON is byte-identical to the sequential run's.

Payloads crossing the process boundary are plain picklable data:
``(position, MatrixCell)`` pairs outbound, and — only when callers ask to
keep full results — ``WorkloadResult`` objects inbound, which pickle
cleanly because results never reference a live ``Network`` or planner.
"""

from __future__ import annotations

import json
import shutil
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..network.simulator import Network
from ..obs import export as _obs_export
from ..obs.profile import CELL_RUN, SPOOL_MERGE, PhaseProfile, phase, profiling
from ..obs.spans import SpanRecorder
from ..workload.driver import WorkloadResult
from ..workload.matrix import (
    CellResult,
    MatrixCell,
    MatrixReport,
    MatrixSpec,
    run_cell,
    shared_network_for,
    write_cell_trace,
)
from .plan import ExecutionPlan
from .spool import count_spooled, dump_spool_line, load_spool, shard_spool_path

#: How often the parent polls spool files for progress while workers run.
POLL_SECONDS = 0.2

#: One shard's payload: everything a worker needs, all picklable.
ShardPayload = Tuple[
    int,                                # shard index
    str,                                # spool file path
    bool,                               # share_networks
    bool,                               # keep_results
    Optional[str],                      # trace_dir
    Optional[str],                      # obs export dir
    bool,                               # profile (wall-clock phase timing)
    Tuple[Tuple[int, MatrixCell], ...], # (position, cell) pairs
]


def _shard_metrics_path(obs_path: Path, shard_index: int) -> Path:
    """The worker-private metrics part file the parent merges and removes.

    Workers must never append to the shared ``metrics.jsonl`` concurrently;
    each writes its own part, exactly like the result spools.
    """
    return obs_path / f"metrics-shard-{shard_index:03d}.jsonl"


def _run_shard(
    payload: ShardPayload,
) -> Tuple[int, List[Tuple[int, WorkloadResult]], Optional[Dict[str, object]]]:
    """Worker entry point: run one shard's cells, spooling as they finish.

    Top-level (not a closure) so it pickles under the ``spawn`` start
    method as well as ``fork``.  Cells execute in the given order over
    per-topology shared networks — the exact warm-up sequence the
    sequential engine produces for these cells.

    With an obs dir the worker writes exactly the cell-level files a
    sequential run would (``spans-cell-NNNN.jsonl`` keyed on grid position)
    plus its own ``shard`` span file and a private metrics part the parent
    folds into ``metrics.jsonl``.  The third return element is the worker's
    wall-clock phase profile (as a dict), or ``None``.
    """
    (
        shard_index, spool_path, share_networks, keep_results, trace_dir,
        obs_dir, profile, cells,
    ) = payload
    obs_path = Path(obs_dir) if obs_dir is not None else None
    shard_tracer = SpanRecorder() if obs_path is not None else None
    shard_profile = PhaseProfile(f"shard-{shard_index}") if profile else None
    networks: Dict[str, Network] = {}
    kept: List[Tuple[int, WorkloadResult]] = []
    metrics_fp = None
    try:
        if obs_path is not None:
            metrics_fp = open(
                _shard_metrics_path(obs_path, shard_index), "w",
                encoding="utf-8",
            )
        with profiling(shard_profile), open(
            spool_path, "w", encoding="utf-8"
        ) as fp:
            shard_span = None
            if shard_tracer is not None:
                shard_span = shard_tracer.begin(
                    "shard", shard=shard_index, cells=len(cells)
                )
            for position, cell in cells:
                network: Optional[Network] = None
                if share_networks:
                    network = shared_network_for(networks, cell.spec)
                cell_tracer = SpanRecorder() if obs_path is not None else None
                with phase(CELL_RUN):
                    cell_result, result = run_cell(
                        cell, network=network, tracer=cell_tracer
                    )
                fp.write(dump_spool_line(position, cell_result))
                fp.flush()  # stream: the parent polls for progress
                if obs_path is not None:
                    cell_tracer.to_path(
                        _obs_export.cell_span_path(obs_path, position)
                    )
                    metrics_fp.write(_obs_export.dump_metrics_line(
                        position,
                        {
                            "name": cell.spec.name,
                            "topology": cell.topology,
                            "strategy": cell.strategy,
                            "regime": cell.regime,
                        },
                        result.metrics.registry,
                    ))
                    shard_tracer.set_clock(float(position))
                    shard_tracer.event(
                        "cell-run", position=position, cell=cell.spec.name
                    )
                if trace_dir is not None:
                    write_cell_trace(trace_dir, position, result)
                if keep_results:
                    kept.append((position, result))
            if shard_tracer is not None:
                shard_tracer.end(shard_span, cells=len(cells))
                shard_tracer.to_path(
                    _obs_export.shard_span_path(obs_path, shard_index)
                )
    finally:
        if metrics_fp is not None:
            metrics_fp.close()
    profile_dict = (
        shard_profile.to_dict() if shard_profile is not None else None
    )
    return shard_index, kept, profile_dict


def run_matrix_parallel(
    matrix: MatrixSpec,
    workers: Optional[int] = None,
    share_networks: bool = True,
    keep_results: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    trace_dir=None,
    spool_dir=None,
    obs_dir=None,
    profile: bool = False,
) -> Tuple[MatrixReport, List[WorkloadResult]]:
    """Run ``matrix`` across worker processes; merge deterministically.

    The report is byte-identical (:meth:`MatrixReport.digest`) to
    ``run_matrix(matrix, share_networks=share_networks)`` at any worker
    count.  ``workers=0``/``None`` means one per CPU; grids that plan to a
    single shard run sequentially in-process (no pool overhead).  Pass
    ``spool_dir`` to keep the JSONL spool files; by default they live in a
    temporary directory removed after the merge.

    ``obs_dir``/``profile`` mirror :func:`~repro.workload.matrix.run_matrix`:
    workers write per-cell span and metrics files keyed on grid position
    (the same file set a sequential run produces), the parent stitches the
    per-shard metrics parts into one position-sorted ``metrics.jsonl``,
    records its own ``merge`` span, and the report gains a per-worker
    ``profile`` section that never enters the digest.
    """
    from ..workload.matrix import run_matrix  # local: avoids import cycle

    plan = ExecutionPlan.from_matrix(matrix, workers or 0)
    if len(plan.shards) <= 1:
        report, results = run_matrix(
            matrix,
            share_networks=share_networks,
            keep_results=keep_results,
            progress=progress,
            trace_dir=trace_dir,
            obs_dir=obs_dir,
            profile=profile,
        )
        if spool_dir is not None:
            # Honour the requested artifact even when the grid collapsed to
            # one in-process shard: same file name, same line format.
            spool_root = Path(spool_dir)
            spool_root.mkdir(parents=True, exist_ok=True)
            with open(
                shard_spool_path(spool_root, 0), "w", encoding="utf-8"
            ) as fp:
                for position, cell_result in enumerate(report.cells):
                    fp.write(dump_spool_line(position, cell_result))
        return report, results
    own_spool = spool_dir is None
    spool_root = Path(
        tempfile.mkdtemp(prefix="repro-spool-") if own_spool else spool_dir
    )
    spool_root.mkdir(parents=True, exist_ok=True)
    spool_paths = [
        shard_spool_path(spool_root, shard.index) for shard in plan.shards
    ]
    obs_path = (
        _obs_export.export_dir(obs_dir) if obs_dir is not None else None
    )
    parent_profile = PhaseProfile("parent") if profile else None
    payloads: List[ShardPayload] = [
        (
            shard.index,
            str(shard_spool_path(spool_root, shard.index)),
            share_networks,
            keep_results,
            str(trace_dir) if trace_dir is not None else None,
            str(obs_path) if obs_path is not None else None,
            profile,
            tuple((indexed.position, indexed.cell) for indexed in shard.cells),
        )
        for shard in plan.shards
    ]
    total = plan.cell_count
    kept: Dict[int, WorkloadResult] = {}
    shard_profiles: Dict[int, Dict[str, object]] = {}
    try:
        with ProcessPoolExecutor(max_workers=len(plan.shards)) as pool:
            pending = {pool.submit(_run_shard, payload) for payload in payloads}
            while pending:
                done, pending = wait(
                    pending, timeout=POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                if progress is not None:
                    progress(min(count_spooled(spool_paths), total), total)
                for future in done:
                    # Reraise worker errors here.
                    shard_index, shard_kept, shard_profile = future.result()
                    kept.update(shard_kept)
                    if shard_profile is not None:
                        shard_profiles[shard_index] = shard_profile
        if progress is not None:
            progress(total, total)
        merge_tracer = SpanRecorder() if obs_path is not None else None
        merge_span = None
        if merge_tracer is not None:
            merge_span = merge_tracer.begin(
                "merge", shards=len(plan.shards), cells=total
            )
        merged: Dict[int, CellResult] = {}
        with profiling(parent_profile), phase(SPOOL_MERGE):
            for path in spool_paths:
                merged.update(load_spool(path))
            if sorted(merged) != list(range(total)):
                missing = sorted(set(range(total)) - set(merged))
                raise RuntimeError(
                    f"parallel merge incomplete: spool is missing cells "
                    f"{missing}"
                )
            cells = [merged[position] for position in range(total)]
            if obs_path is not None:
                _merge_shard_metrics(obs_path, plan)
        if merge_tracer is not None:
            merge_tracer.end(merge_span)
            merge_tracer.to_path(obs_path / _obs_export.MERGE_SPANS_FILE)
    finally:
        if own_spool:
            shutil.rmtree(spool_root, ignore_errors=True)
    results = [kept[position] for position in sorted(kept)] if keep_results \
        else []
    report = MatrixReport(matrix.to_dict(), cells, plan.skipped)
    if profile:
        profiles = [parent_profile] + [
            PhaseProfile.from_dict(shard_profiles[index])
            for index in sorted(shard_profiles)
        ]
        if obs_path is not None:
            _obs_export.write_profiles(
                _obs_export.profile_path(obs_path), profiles
            )
        report.attach_profile(_obs_export.profiles_dict(profiles))
    return report, results


def _merge_shard_metrics(obs_path: Path, plan: ExecutionPlan) -> None:
    """Fold the workers' metrics part files into one position-sorted
    ``metrics.jsonl`` — byte-identical to the file a sequential run writes —
    then delete the parts."""
    lines: List[Tuple[int, str]] = []
    for shard in plan.shards:
        part = _shard_metrics_path(obs_path, shard.index)
        if not part.exists():
            continue
        with open(part, "r", encoding="utf-8") as fp:
            for line in fp:
                if line.strip():
                    lines.append((int(json.loads(line)["position"]), line))
        part.unlink()
    lines.sort(key=lambda pair: pair[0])
    with open(_obs_export.metrics_path(obs_path), "w", encoding="utf-8") as fp:
        for _, line in lines:
            fp.write(line)
