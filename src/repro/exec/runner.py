"""The process-pool matrix runner and its deterministic merge.

Each shard runs in its own worker process (real parallelism — no GIL
sharing) through :func:`_run_shard`, which is deliberately a thin loop
around :func:`repro.workload.matrix.run_cell` and the same per-topology
shared-network helper the sequential engine uses.  Workers stream each
finished cell into their JSONL spool; the parent polls the spools while
the pool drains (that is the progress/ETA feed) and then merges all spool
records by grid position into a :class:`~repro.workload.matrix.MatrixReport`
whose canonical JSON is byte-identical to the sequential run's.

Payloads crossing the process boundary are plain picklable data:
``(position, MatrixCell)`` pairs outbound, and — only when callers ask to
keep full results — ``WorkloadResult`` objects inbound, which pickle
cleanly because results never reference a live ``Network`` or planner.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from ..network.simulator import Network
from ..obs import export as _obs_export
from ..obs.profile import CELL_RUN, SPOOL_MERGE, PhaseProfile, phase, profiling
from ..obs.spans import SpanRecorder
from ..workload.driver import WorkloadResult
from ..workload.matrix import (
    CellResult,
    MatrixCell,
    MatrixReport,
    MatrixSpec,
    run_cell,
    write_cell_trace,
)
from .cache import (
    CellCache,
    IncrementalRunner,
    canonical_cell_payload,
    merge_cache_stats,
)
from .plan import ExecutionPlan
from .pool import WarmPool, checkout_network
from .spool import SpoolCursor, SpoolError, dump_spool_line, load_spool, \
    shard_spool_path

#: How often the parent polls spool files for progress while workers run.
POLL_SECONDS = 0.2

#: One shard's payload: everything a worker needs, all picklable.
ShardPayload = Tuple[
    int,                                # shard index
    str,                                # spool file path
    bool,                               # share_networks
    bool,                               # keep_results
    Optional[str],                      # trace_dir
    Optional[str],                      # obs export dir
    bool,                               # profile (wall-clock phase timing)
    Optional[str],                      # cell-cache dir
    Optional[int],                      # warm-pool generation (None = no pool)
    Tuple[Tuple[int, MatrixCell], ...], # (position, cell) pairs
]


def _shard_metrics_path(obs_path: Path, shard_index: int) -> Path:
    """The worker-private metrics part file the parent merges and removes.

    Workers must never append to the shared ``metrics.jsonl`` concurrently;
    each writes its own part, exactly like the result spools.
    """
    return obs_path / f"metrics-shard-{shard_index:03d}.jsonl"


def _run_shard(
    payload: ShardPayload,
) -> Tuple[
    int,
    List[Tuple[int, WorkloadResult]],
    Optional[Dict[str, object]],
    Optional[Dict[str, int]],
]:
    """Worker entry point: run one shard's cells, spooling as they finish.

    Top-level (not a closure) so it pickles under the ``spawn`` start
    method as well as ``fork``.  Cells execute in the given order over
    per-topology shared networks — the exact warm-up sequence the
    sequential engine produces for these cells.

    With an obs dir the worker writes exactly the cell-level files a
    sequential run would (``spans-cell-NNNN.jsonl`` keyed on grid position)
    plus its own ``shard`` span file and a private metrics part the parent
    folds into ``metrics.jsonl``.  The third return element is the worker's
    wall-clock phase profile (as a dict), or ``None``; the fourth is its
    cache/warm-pool counter snapshot, or ``None`` when neither is in play.

    With a cache dir the shard serves unchanged cells straight from the
    content-addressed store (chain-keyed, so hits agree with the
    sequential engine — see :mod:`repro.exec.cache`); with a warm-pool
    generation it checks this worker process's persistent network store
    before building a topology from scratch.
    """
    (
        shard_index, spool_path, share_networks, keep_results, trace_dir,
        obs_dir, profile, cache_dir, generation, cells,
    ) = payload
    obs_path = Path(obs_dir) if obs_dir is not None else None
    shard_tracer = SpanRecorder() if obs_path is not None else None
    shard_profile = PhaseProfile(f"shard-{shard_index}") if profile else None
    networks: Dict[str, Network] = {}
    kept: List[Tuple[int, WorkloadResult]] = []
    stats: Dict[str, int] = {}
    cache = runner = None
    if cache_dir is not None:
        cache = CellCache(cache_dir)
        runner = IncrementalRunner(
            cache,
            share_networks=share_networks,
            reads=not (
                keep_results or trace_dir is not None or obs_path is not None
            ),
        )
    metrics_fp = None
    try:
        if obs_path is not None:
            metrics_fp = open(
                _shard_metrics_path(obs_path, shard_index), "w",
                encoding="utf-8",
            )
        with profiling(shard_profile), open(
            spool_path, "w", encoding="utf-8"
        ) as fp:
            shard_span = None
            if shard_tracer is not None:
                shard_span = shard_tracer.begin(
                    "shard", shard=shard_index, cells=len(cells)
                )
            for position, cell in cells:
                if runner is not None:
                    cached = runner.lookup(cell)
                    if cached is not None:
                        fp.write(dump_spool_line(position, cached))
                        fp.flush()
                        continue
                network: Optional[Network] = None
                if share_networks:
                    network = checkout_network(
                        networks, cell.spec, generation, stats
                    )
                    if runner is not None:
                        runner.warmup(cell, network)
                cell_tracer = SpanRecorder() if obs_path is not None else None
                with phase(CELL_RUN):
                    cell_result, result = run_cell(
                        cell, network=network, tracer=cell_tracer
                    )
                if runner is not None:
                    runner.record(cell_result)
                fp.write(dump_spool_line(position, cell_result))
                fp.flush()  # stream: the parent polls for progress
                if obs_path is not None:
                    cell_tracer.to_path(
                        _obs_export.cell_span_path(obs_path, position)
                    )
                    metrics_fp.write(_obs_export.dump_metrics_line(
                        position,
                        {
                            "name": cell.spec.name,
                            "topology": cell.topology,
                            "strategy": cell.strategy,
                            "regime": cell.regime,
                        },
                        result.metrics.registry,
                    ))
                    if result.exemplars:
                        _obs_export.write_timelines(
                            _obs_export.timeline_path(obs_path, position),
                            result.exemplars,
                        )
                    shard_tracer.set_clock(float(position))
                    shard_tracer.event(
                        "cell-run", position=position, cell=cell.spec.name
                    )
                if trace_dir is not None:
                    write_cell_trace(trace_dir, position, result)
                if keep_results:
                    kept.append((position, result))
            if shard_tracer is not None:
                shard_tracer.end(shard_span, cells=len(cells))
                shard_tracer.to_path(
                    _obs_export.shard_span_path(obs_path, shard_index)
                )
    finally:
        if metrics_fp is not None:
            metrics_fp.close()
    profile_dict = (
        shard_profile.to_dict() if shard_profile is not None else None
    )
    if cache is not None:
        merge_cache_stats(stats, cache.stats())
    return shard_index, kept, profile_dict, (stats or None)


def run_matrix_parallel(
    matrix: MatrixSpec,
    workers: Optional[int] = None,
    share_networks: bool = True,
    keep_results: bool = False,
    progress: Optional[Callable[[int, int], None]] = None,
    trace_dir=None,
    spool_dir=None,
    obs_dir=None,
    profile: bool = False,
    cache_dir=None,
    pool: Optional[WarmPool] = None,
) -> Tuple[MatrixReport, List[WorkloadResult]]:
    """Run ``matrix`` across worker processes; merge deterministically.

    The report is byte-identical (:meth:`MatrixReport.digest`) to
    ``run_matrix(matrix, share_networks=share_networks)`` at any worker
    count.  ``workers=0``/``None`` means one per CPU; grids that plan to a
    single shard run sequentially in-process (no pool overhead).  Pass
    ``spool_dir`` to keep the JSONL spool files; by default they live in a
    temporary directory removed after the merge.

    ``obs_dir``/``profile`` mirror :func:`~repro.workload.matrix.run_matrix`:
    workers write per-cell span and metrics files keyed on grid position
    (the same file set a sequential run produces), the parent stitches the
    per-shard metrics parts into one position-sorted ``metrics.jsonl``,
    records its own ``merge`` span, and the report gains a per-worker
    ``profile`` section that never enters the digest.

    ``cache_dir`` names a content-addressed cell cache
    (:class:`~repro.exec.cache.CellCache`): unchanged cells are served
    from it instead of executed, and every executed cell is stored.
    ``pool`` is a live :class:`~repro.exec.pool.WarmPool` whose worker
    processes (and their per-topology networks) persist across calls; it
    overrides ``workers`` and is not shut down here.  Both are
    digest-neutral; their counters land in the report's digest-excluded
    ``cache`` section.
    """
    from ..workload.matrix import run_matrix  # local: avoids import cycle

    if pool is not None:
        workers = pool.workers
    plan = ExecutionPlan.from_matrix(matrix, workers or 0)
    if len(plan.shards) <= 1:
        report, results = run_matrix(
            matrix,
            share_networks=share_networks,
            keep_results=keep_results,
            progress=progress,
            trace_dir=trace_dir,
            obs_dir=obs_dir,
            profile=profile,
            cache_dir=cache_dir,
        )
        if spool_dir is not None:
            # Honour the requested artifact even when the grid collapsed to
            # one in-process shard: same file name, same line format, and —
            # critically — the *planned* grid positions, exactly as the
            # multi-shard path spools them.
            spool_root = Path(spool_dir)
            spool_root.mkdir(parents=True, exist_ok=True)
            positions = [
                indexed.position
                for shard in plan.shards for indexed in shard.cells
            ]
            with open(
                shard_spool_path(spool_root, 0), "w", encoding="utf-8"
            ) as fp:
                for position, cell_result in zip(positions, report.cells):
                    fp.write(dump_spool_line(position, cell_result))
        return report, results
    own_spool = spool_dir is None
    spool_root = Path(
        tempfile.mkdtemp(prefix="repro-spool-") if own_spool else spool_dir
    )
    spool_root.mkdir(parents=True, exist_ok=True)
    spool_paths = [
        shard_spool_path(spool_root, shard.index) for shard in plan.shards
    ]
    obs_path = (
        _obs_export.export_dir(obs_dir) if obs_dir is not None else None
    )
    parent_profile = PhaseProfile("parent") if profile else None
    generation = pool.generation if pool is not None and share_networks \
        else None
    payloads: List[ShardPayload] = [
        (
            shard.index,
            str(shard_spool_path(spool_root, shard.index)),
            share_networks,
            keep_results,
            str(trace_dir) if trace_dir is not None else None,
            str(obs_path) if obs_path is not None else None,
            profile,
            str(cache_dir) if cache_dir is not None else None,
            generation,
            tuple((indexed.position, indexed.cell) for indexed in shard.cells),
        )
        for shard in plan.shards
    ]
    total = plan.cell_count
    kept: Dict[int, WorkloadResult] = {}
    shard_profiles: Dict[int, Dict[str, object]] = {}
    exec_stats: Dict[str, int] = {}
    try:
        own_executor = pool is None
        executor = (
            ProcessPoolExecutor(max_workers=len(plan.shards))
            if own_executor else pool.executor
        )
        try:
            pending = {
                executor.submit(_run_shard, payload) for payload in payloads
            }
            cursor = SpoolCursor(spool_paths)
            while pending:
                done, pending = wait(
                    pending, timeout=POLL_SECONDS, return_when=FIRST_COMPLETED
                )
                if progress is not None:
                    progress(min(cursor.count(), total), total)
                for future in done:
                    # Reraise worker errors here.
                    shard_index, shard_kept, shard_profile, shard_stats = \
                        future.result()
                    kept.update(shard_kept)
                    if shard_profile is not None:
                        shard_profiles[shard_index] = shard_profile
                    if shard_stats:
                        merge_cache_stats(exec_stats, shard_stats)
        finally:
            if own_executor:
                executor.shutdown(wait=True)
        if progress is not None:
            progress(total, total)
        merge_tracer = SpanRecorder() if obs_path is not None else None
        merge_span = None
        if merge_tracer is not None:
            merge_span = merge_tracer.begin(
                "merge", shards=len(plan.shards), cells=total
            )
        merged: Dict[int, CellResult] = {}
        sources: Dict[int, str] = {}
        with profiling(parent_profile), phase(SPOOL_MERGE):
            for path in spool_paths:
                for position, cell_result in load_spool(path):
                    existing = merged.get(position)
                    if existing is None:
                        merged[position] = cell_result
                        sources[position] = str(path)
                        continue
                    # Duplicates are legal only when byte-equal (an
                    # idempotent re-spool); disagreeing records mean two
                    # different cells claimed one grid position — the
                    # old silent last-write-wins masked exactly that.
                    if canonical_cell_payload(existing) != \
                            canonical_cell_payload(cell_result):
                        raise SpoolError(
                            f"conflicting spool records for cell "
                            f"{position}: {sources[position]} and {path} "
                            f"disagree"
                        )
            if sorted(merged) != list(range(total)):
                missing = sorted(set(range(total)) - set(merged))
                raise RuntimeError(
                    f"parallel merge incomplete: spool is missing cells "
                    f"{missing}"
                )
            cells = [merged[position] for position in range(total)]
            if obs_path is not None:
                _merge_shard_metrics(obs_path, plan)
        if merge_tracer is not None:
            merge_tracer.end(merge_span)
            merge_tracer.to_path(obs_path / _obs_export.MERGE_SPANS_FILE)
    finally:
        if own_spool:
            shutil.rmtree(spool_root, ignore_errors=True)
    results = [kept[position] for position in sorted(kept)] if keep_results \
        else []
    report = MatrixReport(matrix.to_dict(), cells, plan.skipped)
    if cache_dir is not None or pool is not None:
        if cache_dir is not None:
            # Every counter appears even when zero, so cold and warm runs
            # report the same key set.
            merge_cache_stats(exec_stats, CellCache(cache_dir).stats())
        report.attach_cache_stats(exec_stats)
        if obs_path is not None:
            _obs_export.write_cache_stats(
                _obs_export.cache_stats_path(obs_path), exec_stats
            )
    if profile:
        profiles = [parent_profile] + [
            PhaseProfile.from_dict(shard_profiles[index])
            for index in sorted(shard_profiles)
        ]
        if obs_path is not None:
            _obs_export.write_profiles(
                _obs_export.profile_path(obs_path), profiles
            )
        report.attach_profile(_obs_export.profiles_dict(profiles))
    return report, results


def _merge_shard_metrics(obs_path: Path, plan: ExecutionPlan) -> None:
    """Fold the workers' metrics part files into one position-sorted
    ``metrics.jsonl`` — byte-identical to the file a sequential run writes —
    then delete the parts.

    The parts are the only copy of the workers' metrics, so the merge must
    not destroy them before the merged file exists: everything is read and
    sorted first (a parse error here leaves every part intact on disk),
    the merged file lands via a temp file + atomic rename, and only then
    are the parts removed.
    """
    lines: List[Tuple[int, str]] = []
    parts: List[Path] = []
    for shard in plan.shards:
        part = _shard_metrics_path(obs_path, shard.index)
        if not part.exists():
            continue
        with open(part, "r", encoding="utf-8") as fp:
            for line in fp:
                if line.strip():
                    lines.append((int(json.loads(line)["position"]), line))
        parts.append(part)
    lines.sort(key=lambda pair: pair[0])
    target = _obs_export.metrics_path(obs_path)
    tmp = target.parent / f"{target.name}.{os.getpid()}.tmp"
    with open(tmp, "w", encoding="utf-8") as fp:
        for _, line in lines:
            fp.write(line)
    os.replace(tmp, target)
    for part in parts:
        part.unlink()
