"""Services: ports plus the set of equivalent server processes offering
them.

"A specific service may be offered by one, or by more than one server
process.  In the latter case, we assume that all server processes that belong
to one service are equivalent: a client sees the same result, regardless
which server process carries out its request" (section 1.3).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..core.exceptions import ServiceError
from ..core.types import Port
from .server import RequestHandler, ServerProcess


class Service:
    """A named service: one port, any number of equivalent servers."""

    def __init__(self, port: Port, handler: Optional[RequestHandler] = None) -> None:
        self._port = port
        self._handler = handler
        self._servers: List[ServerProcess] = []

    @property
    def port(self) -> Port:
        """The service's port."""
        return self._port

    @property
    def handler(self) -> Optional[RequestHandler]:
        """The shared request handler new servers of this service use."""
        return self._handler

    @property
    def servers(self) -> List[ServerProcess]:
        """All server processes ever attached (including dead ones)."""
        return list(self._servers)

    def live_servers(self) -> List[ServerProcess]:
        """Servers that are alive and accepting requests."""
        return [server for server in self._servers if server.accepting]

    def attach(self, server: ServerProcess) -> None:
        """Attach an existing server process to this service."""
        if server.port != self._port:
            raise ServiceError(
                f"server serves {server.port}, not this service's {self._port}"
            )
        self._servers.append(server)

    def is_available(self) -> bool:
        """Whether at least one server currently accepts requests."""
        return bool(self.live_servers())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Service(port={self._port.name!r}, "
            f"servers={len(self.live_servers())}/{len(self._servers)})"
        )


class ServiceDirectory:
    """All services known to a distributed system, keyed by port."""

    def __init__(self) -> None:
        self._services: Dict[Port, Service] = {}

    def get_or_create(
        self, port: Port, handler: Optional[RequestHandler] = None
    ) -> Service:
        """The service for ``port``, created on first use."""
        if port not in self._services:
            self._services[port] = Service(port, handler)
        return self._services[port]

    def get(self, port: Port) -> Optional[Service]:
        """The service for ``port`` or ``None``."""
        return self._services.get(port)

    def ports(self) -> List[Port]:
        """All registered ports."""
        return list(self._services)

    def __len__(self) -> int:
        return len(self._services)

    def __contains__(self, port: Port) -> bool:
        return port in self._services
