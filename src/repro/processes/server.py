"""Server processes.

"A service is defined by a set of commands and responses.  Each service is
handled by one or more server processes that accept messages from clients,
carry out the required work, and send back replies" (section 1.3).  A server
process here is a node-resident process with a request handler; the
:class:`~repro.processes.system.DistributedSystem` delivers client requests
to it and routes the replies back.
"""

from __future__ import annotations

from typing import Callable, Hashable, Optional

from ..core.types import Port
from .process import Process

#: A request handler: receives the request payload, returns the reply payload.
RequestHandler = Callable[[object], object]


def echo_handler(payload: object) -> object:
    """The default handler: reply with the request payload unchanged."""
    return payload


class ServerProcess(Process):
    """A process offering a service on a port."""

    def __init__(
        self,
        node: Hashable,
        port: Port,
        handler: Optional[RequestHandler] = None,
        name: str = "",
    ) -> None:
        super().__init__(node, name or f"server[{port.name}]@{node}")
        self._port = port
        self._handler = handler or echo_handler
        self._requests_handled = 0
        self._accepting = True

    @property
    def port(self) -> Port:
        """The port this server serves."""
        return self._port

    @property
    def requests_handled(self) -> int:
        """How many requests this server has processed."""
        return self._requests_handled

    @property
    def accepting(self) -> bool:
        """Whether the server currently accepts requests.

        The paper notes a service can be removed "by making [its servers]
        stop behaving like a server, i.e., by telling them to stop receiving
        requests" — that is exactly what :meth:`stop_accepting` does.
        """
        return self._alive and self._accepting

    def stop_accepting(self) -> None:
        """Stop accepting new requests without killing the process."""
        self._accepting = False

    def resume_accepting(self) -> None:
        """Start accepting requests again."""
        self.require_alive()
        self._accepting = True

    def handle(self, payload: object) -> object:
        """Process one request and produce the reply."""
        self.require_alive()
        if not self._accepting:
            raise RuntimeError(f"{self.name} is not accepting requests")
        self._requests_handled += 1
        return self._handler(payload)
