"""The distributed system facade: processes + match-making + network.

:class:`DistributedSystem` is the Amoeba-style substrate the paper's
introduction motivates: mobile server and client processes on a pool of
processors, a service model where "every job in the system is executed by a
dynamic network of servers executing each other's requests", and a
distributed name server (any :class:`~repro.core.strategy.MatchMakingStrategy`)
matching the two.

The request path is:

1. the client consults its private address cache; on a miss (or after a
   stale address) it runs a locate through the match-maker;
2. the request payload is routed point-to-point to the located address;
3. if no accepting server is at that address any more (it migrated, died or
   stopped accepting), the address is stale: the client forgets it, re-runs
   the locate and retries — timestamped postings make the freshest address
   win (section 2.1, assumption 3);
4. the reply is routed back.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Iterable, List, Optional, Tuple

from ..core.exceptions import (
    NoRouteError,
    NodeDownError,
    ServiceError,
    ServiceNotFoundError,
)
from ..core.matchmaker import MatchMaker, ServerRegistration
from ..core.strategy import MatchMakingStrategy
from ..core.types import Address, Port
from ..network.simulator import Network
from .client import ClientProcess
from .server import RequestHandler, ServerProcess
from .service import ServiceDirectory


@dataclass(frozen=True)
class RequestOutcome:
    """Result of one client request through the system."""

    ok: bool
    reply: object = None
    server: Optional[ServerProcess] = None
    locates: int = 0
    retries: int = 0
    used_cached_address: bool = False
    error: str = ""


@dataclass
class SystemStats:
    """System-wide counters."""

    requests: int = 0
    successful_requests: int = 0
    locates: int = 0
    stale_addresses: int = 0
    migrations: int = 0
    recoveries: int = 0
    invalidation_storms: int = 0
    reposts: int = 0


class DistributedSystem:
    """Mobile processes plus a pluggable distributed name server."""

    def __init__(
        self,
        network: Network,
        strategy: MatchMakingStrategy,
        delivery_mode: Optional[str] = None,
        max_retries: int = 2,
    ) -> None:
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self._network = network
        self._matchmaker = MatchMaker(network, strategy, delivery_mode=delivery_mode)
        self._directory = ServiceDirectory()
        self._servers: Dict[int, ServerProcess] = {}
        self._clients: Dict[int, ClientProcess] = {}
        self._registrations: Dict[int, ServerRegistration] = {}
        # Location index: (node, port) -> server processes, so the hot
        # request path does not scan every server ever created.
        self._by_location: Dict[Tuple[Hashable, Port], List[ServerProcess]] = {}
        self._max_retries = max_retries
        self._stats = SystemStats()

    # -- accessors -----------------------------------------------------------

    @property
    def network(self) -> Network:
        """The underlying network simulator."""
        return self._network

    @property
    def matchmaker(self) -> MatchMaker:
        """The match-making engine (name server)."""
        return self._matchmaker

    @property
    def directory(self) -> ServiceDirectory:
        """The directory of known services."""
        return self._directory

    @property
    def stats(self) -> SystemStats:
        """System-wide counters."""
        return self._stats

    def servers(self) -> List[ServerProcess]:
        """All server processes (including dead ones)."""
        return list(self._servers.values())

    def clients(self) -> List[ClientProcess]:
        """All client processes."""
        return list(self._clients.values())

    # -- process management -------------------------------------------------------

    def create_server(
        self,
        node: Hashable,
        port: Port,
        handler: Optional[RequestHandler] = None,
        name: str = "",
    ) -> ServerProcess:
        """Start a server process at ``node`` and advertise it.

        The server's ``(port, address)`` is posted at ``P(node)`` through the
        match-maker, making it locatable immediately.
        """
        if not self._network.node_is_up(node):
            raise NodeDownError(node)
        service = self._directory.get_or_create(port, handler)
        server = ServerProcess(node, port, handler or service.handler, name=name)
        service.attach(server)
        self._servers[server.pid] = server
        self._index_add(server)
        registration = self._matchmaker.register_server(
            node, port, server_id=server.name
        )
        self._registrations[server.pid] = registration
        return server

    def create_client(self, node: Hashable, name: str = "") -> ClientProcess:
        """Start a client process at ``node``."""
        if not self._network.node_is_up(node):
            raise NodeDownError(node)
        client = ClientProcess(node, name=name)
        self._clients[client.pid] = client
        return client

    def retire_server(self, server: ServerProcess) -> None:
        """Stop a server and withdraw its postings."""
        registration = self._registrations.pop(server.pid, None)
        if registration is not None and self._network.node_is_up(server.node):
            self._matchmaker.deregister_server(registration)
        self._index_remove(server)
        server.kill()

    def migrate_server(self, server: ServerProcess, new_node: Hashable) -> None:
        """Move a server process to another node and re-advertise it.

        Old postings are withdrawn when reachable; in any case the fresh
        posting carries a newer timestamp, so rendezvous nodes prefer it.
        """
        server.require_alive()
        if not self._network.node_is_up(new_node):
            raise NodeDownError(new_node)
        registration = self._registrations.get(server.pid)
        if registration is not None and self._network.node_is_up(server.node):
            self._matchmaker.deregister_server(registration)
        self._index_remove(server)
        server._move_to(new_node)
        self._index_add(server)
        self._registrations[server.pid] = self._matchmaker.register_server(
            new_node, server.port, server_id=server.name
        )
        self._stats.migrations += 1

    def crash_node(self, node: Hashable) -> None:
        """Crash a node: the node's cache is lost and resident processes
        die."""
        self._network.crash_node(node)
        for server in self._servers.values():
            if server.node == node and server.alive:
                server.kill()
                self._index_remove(server)
                self._registrations.pop(server.pid, None)
        for client in self._clients.values():
            if client.node == node and client.alive:
                client.kill()

    def recover_node(self, node: Hashable) -> None:
        """Bring a crashed node back up (with an empty posting cache).

        Processes that died in the crash stay dead — a recovered processor
        comes back empty; churn models re-create servers explicitly.
        """
        self._network.recover_node(node)
        self._stats.recoveries += 1

    # -- churn / maintenance hooks ------------------------------------------------

    def invalidate_caches(self, nodes: Optional[Iterable[Hashable]] = None) -> int:
        """Drop the posting caches of ``nodes`` (default: every up node).

        Models an invalidation storm: rendezvous information is lost but the
        nodes stay up, so subsequent locates miss until servers re-post.
        Returns the number of caches cleared.
        """
        cleared = 0
        targets = list(nodes) if nodes is not None else self._network.node_ids()
        for node_id in targets:
            node = self._network.node(node_id)
            if node.alive:
                node.cache.clear()
                cleared += 1
        self._stats.invalidation_storms += 1
        return cleared

    def refresh_server(self, server: ServerProcess) -> None:
        """Re-post a live server's ``(port, address)`` at ``P(node)``.

        The operational analogue of servers re-advertising after a cache
        invalidation; the fresh posting carries a newer timestamp, so it wins
        at every rendezvous node (section 2.1, assumption 3).
        """
        server.require_alive()
        self._registrations[server.pid] = self._matchmaker.register_server(
            server.node, server.port, server_id=server.name
        )
        self._stats.reposts += 1

    def servers_for(self, port: Port) -> List[ServerProcess]:
        """All live, accepting servers currently offering ``port``."""
        return [
            server
            for server in self._servers.values()
            if server.port == port and server.accepting
        ]

    # -- the request path -----------------------------------------------------------

    def _index_add(self, server: ServerProcess) -> None:
        self._by_location.setdefault((server.node, server.port), []).append(server)

    def _index_remove(self, server: ServerProcess) -> None:
        bucket = self._by_location.get((server.node, server.port))
        if bucket is not None and server in bucket:
            bucket.remove(server)
            if not bucket:
                del self._by_location[(server.node, server.port)]

    def _accepting_server_at(
        self, node: Hashable, port: Port
    ) -> Optional[ServerProcess]:
        for server in self._by_location.get((node, port), ()):
            if server.accepting:
                return server
        return None

    def _locate(self, client: ClientProcess, port: Port) -> Optional[Address]:
        self._stats.locates += 1
        client.stats.locates += 1
        result = self._matchmaker.locate(client.node, port)
        if not result.found:
            return None
        return result.address  # type: ignore[return-value]

    def request(
        self, client: ClientProcess, port: Port, payload: object
    ) -> RequestOutcome:
        """Issue one request from ``client`` to the service at ``port``.

        Returns a :class:`RequestOutcome`; ``ok`` is ``False`` when the
        service could not be located or reached within the retry budget.
        """
        client.require_alive()
        self._stats.requests += 1
        client.stats.requests += 1

        locates = 0
        retries = 0
        used_cache = False
        # A cached address only *counts* as a hit once it is validated: the
        # request must complete without any locate.  Counting here would
        # inflate per-client stats relative to WorkloadMetrics.cache_hits
        # (which requires ``locates == 0``) whenever the address is stale.
        address = client.cached_address(port)
        if address is not None:
            used_cache = True

        for attempt in range(self._max_retries + 1):
            if address is None:
                located = self._locate(client, port)
                locates += 1
                if located is None:
                    self._record_failure(client)
                    return RequestOutcome(
                        ok=False,
                        locates=locates,
                        retries=retries,
                        used_cached_address=used_cache,
                        error=f"no server found for {port}",
                    )
                address = located
                client.remember_address(port, address)

            target_node = address.node
            server = (
                self._accepting_server_at(target_node, port)
                if self._network.node_is_up(target_node)
                else None
            )
            if server is None:
                # Stale address: the server migrated, died, or its host is
                # down.  Forget it and locate again.
                client.forget_address(port)
                client.stats.stale_addresses += 1
                self._stats.stale_addresses += 1
                address = None
                retries += 1
                continue

            try:
                self._network.send_payload(client.node, target_node)
                reply = server.handle(payload)
                self._network.send_payload(target_node, client.node)
            except (NoRouteError, NodeDownError) as exc:
                client.forget_address(port)
                address = None
                retries += 1
                if attempt == self._max_retries:
                    self._record_failure(client)
                    self._count_cache_hit(client, used_cache, locates)
                    return RequestOutcome(
                        ok=False,
                        locates=locates,
                        retries=retries,
                        used_cached_address=used_cache,
                        error=str(exc),
                    )
                continue

            self._stats.successful_requests += 1
            self._count_cache_hit(client, used_cache, locates)
            return RequestOutcome(
                ok=True,
                reply=reply,
                server=server,
                locates=locates,
                retries=retries,
                used_cached_address=used_cache,
            )

        self._record_failure(client)
        self._count_cache_hit(client, used_cache, locates)
        return RequestOutcome(
            ok=False,
            locates=locates,
            retries=retries,
            used_cached_address=used_cache,
            error=f"retry budget exhausted for {port}",
        )

    def request_batch(
        self, operations: Iterable[Tuple[ClientProcess, Port, object]]
    ) -> List[RequestOutcome]:
        """Run a batch of ``(client, port, payload)`` requests back-to-back.

        A convenience entry point for callers that want many operations per
        call without per-request instrumentation (callers that meter each
        request, like the workload driver, call :meth:`request` directly).
        The returned outcomes line up with the input order.
        """
        return [
            self.request(client, port, payload)
            for client, port, payload in operations
        ]

    def request_or_raise(
        self, client: ClientProcess, port: Port, payload: object
    ) -> object:
        """Like :meth:`request` but raise :class:`ServiceNotFoundError` /
        :class:`ServiceError` on failure and return the reply directly."""
        outcome = self.request(client, port, payload)
        if outcome.ok:
            return outcome.reply
        if "no server found" in outcome.error:
            raise ServiceNotFoundError(port)
        raise ServiceError(outcome.error)

    def _record_failure(self, client: ClientProcess) -> None:
        client.stats.failures += 1

    @staticmethod
    def _count_cache_hit(
        client: ClientProcess, used_cache: bool, locates: int
    ) -> None:
        """Count a validated cache hit, with the exact predicate
        :meth:`~repro.workload.metrics.WorkloadMetrics.observe_request`
        uses (``from_cache and locates == 0``), so per-client counters sum
        to the workload-level counter."""
        if used_cache and locates == 0:
            client.stats.cache_hits += 1
