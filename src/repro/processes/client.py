"""Client processes.

A client process asks the system to perform operations on services named by
ports; it neither knows nor cares where the server processes are — that is
the whole point of match-making.  The client keeps a small private cache of
addresses it learned from earlier locates ("entries are made or updated ...
when a reply from a locate operation is received", section 2.1) and falls
back to a fresh locate when a cached address turns out to be stale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, Optional

from ..core.types import Address, Port
from .process import Process


@dataclass
class ClientStats:
    """Counters of a client's interactions with the system."""

    requests: int = 0
    locates: int = 0
    cache_hits: int = 0
    stale_addresses: int = 0
    failures: int = 0


class ClientProcess(Process):
    """A process that issues requests to services."""

    def __init__(self, node: Hashable, name: str = "") -> None:
        super().__init__(node, name or f"client@{node}")
        self._address_cache: Dict[Port, Address] = {}
        self._stats = ClientStats()

    @property
    def stats(self) -> ClientStats:
        """The client's interaction counters."""
        return self._stats

    # -- private address cache ---------------------------------------------------

    def cached_address(self, port: Port) -> Optional[Address]:
        """The client's privately cached address for ``port``, if any."""
        return self._address_cache.get(port)

    def remember_address(self, port: Port, address: Address) -> None:
        """Cache an address learned from a locate reply."""
        self._address_cache[port] = address

    def forget_address(self, port: Port) -> None:
        """Drop a (presumably stale) cached address."""
        self._address_cache.pop(port, None)

    def clear_cache(self) -> None:
        """Drop every cached address (e.g. after migrating)."""
        self._address_cache.clear()
