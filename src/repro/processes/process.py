"""Process base class for the service model.

Section 1.3 of the paper (the Amoeba-style service model): "Services are
offered by a number of server processes, distributed over the network.
Client processes send requests to services; the services carry out these
requests and return a reply. ... So a process can be a client, a server, or
both, and change its role dynamically."

Processes live at a network node, can migrate to another node and can die;
they never have permanent addresses — only their current node's address.
"""

from __future__ import annotations

import itertools
from typing import Hashable

from ..core.exceptions import ProcessLifecycleError
from ..core.types import Address

_process_ids = itertools.count(1)


class Process:
    """A process residing at a network node."""

    def __init__(self, node: Hashable, name: str = "") -> None:
        self._pid = next(_process_ids)
        self._node = node
        self._name = name or f"process-{self._pid}"
        self._alive = True

    @property
    def pid(self) -> int:
        """The process identifier (unique within the Python process)."""
        return self._pid

    @property
    def name(self) -> str:
        """Human-readable process name."""
        return self._name

    @property
    def node(self) -> Hashable:
        """The node this process currently resides at."""
        return self._node

    @property
    def address(self) -> Address:
        """The process's current address (its node's address)."""
        return Address(self._node)

    @property
    def alive(self) -> bool:
        """Whether the process is alive."""
        return self._alive

    def require_alive(self) -> None:
        """Raise :class:`ProcessLifecycleError` if the process has died."""
        if not self._alive:
            raise ProcessLifecycleError(f"{self._name} (pid {self._pid}) is dead")

    def kill(self) -> None:
        """Terminate the process."""
        self._alive = False

    def _move_to(self, node: Hashable) -> None:
        """Relocate the process (used by the system's migration logic)."""
        self.require_alive()
        self._node = node

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        status = "alive" if self._alive else "dead"
        return f"{type(self).__name__}({self._name!r}, node={self._node!r}, {status})"
