"""The Amoeba-style service/process model (sections 1.2-1.4 of the paper).

Mobile server and client processes on a simulated processor pool, services
named by location-independent ports, and a pluggable distributed name server
matching clients to servers.
"""

from .client import ClientProcess, ClientStats
from .process import Process
from .server import RequestHandler, ServerProcess, echo_handler
from .service import Service, ServiceDirectory
from .system import DistributedSystem, RequestOutcome, SystemStats

__all__ = [
    "ClientProcess",
    "ClientStats",
    "DistributedSystem",
    "Process",
    "RequestHandler",
    "RequestOutcome",
    "ServerProcess",
    "Service",
    "ServiceDirectory",
    "SystemStats",
    "echo_handler",
]
