"""Production-style metrics for workload runs.

The paper compares strategies by worst-case and average message counts; a
production service is judged by distributions — tail percentiles, hit
rates, hotspots.  :class:`HopHistogram` is an exact integer histogram (hop
counts are small integers, so percentiles cost O(distinct values), not
O(samples)), and :class:`WorkloadMetrics` aggregates one run's request
stream, churn activity and per-node load into a deterministic summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Tuple


class HopHistogram:
    """An exact histogram of small non-negative integer samples."""

    def __init__(self) -> None:
        self._counts: Dict[int, int] = {}
        self._total = 0
        self._sum = 0

    def add(self, value: int, count: int = 1) -> None:
        """Record ``count`` samples of ``value``."""
        if value < 0 or count < 1:
            raise ValueError("value must be >= 0 and count >= 1")
        self._counts[value] = self._counts.get(value, 0) + count
        self._total += count
        self._sum += value * count

    @property
    def count(self) -> int:
        """Number of samples recorded."""
        return self._total

    @property
    def mean(self) -> float:
        """Sample mean (0.0 when empty)."""
        return self._sum / self._total if self._total else 0.0

    @property
    def max(self) -> int:
        """Largest sample (0 when empty)."""
        return max(self._counts) if self._counts else 0

    def percentile(self, p: float) -> int:
        """The nearest-rank ``p``-th percentile (0 when empty)."""
        if not 0 < p <= 100:
            raise ValueError("p must be in (0, 100]")
        if not self._total:
            return 0
        rank = max(1, -(-self._total * p // 100))  # ceil without floats
        seen = 0
        for value in sorted(self._counts):
            seen += self._counts[value]
            if seen >= rank:
                return value
        return self.max  # pragma: no cover - unreachable

    def to_dict(self) -> Dict[str, object]:
        """Mean, tail percentiles and max — the summary a dashboard shows."""
        return {
            "count": self._total,
            "mean": round(self.mean, 3),
            "p50": self.percentile(50),
            "p95": self.percentile(95),
            "p99": self.percentile(99),
            "max": self.max,
        }

    def buckets(self) -> List[Tuple[int, int]]:
        """Sorted ``(value, count)`` pairs (the raw histogram)."""
        return sorted(self._counts.items())


@dataclass
class WorkloadMetrics:
    """Aggregated measurements of one workload run."""

    requests: int = 0
    successes: int = 0
    failures: int = 0
    #: Requests served straight from the client's address cache (no locate).
    cache_hits: int = 0
    locates: int = 0
    stale_retries: int = 0
    churn_events: Dict[str, int] = field(default_factory=dict)
    #: Substrate fault-timeline events executed during the run (crash waves,
    #: link flaps, partitions...), by trace-op kind.  Separate from
    #: ``churn_events``, which counts population churn.
    fault_events: Dict[str, int] = field(default_factory=dict)
    #: Hops spent on match-making (query + reply) per request.
    locate_hops: HopHistogram = field(default_factory=HopHistogram)
    #: Total hops (match-making + payload round trip) per request.
    request_hops: HopHistogram = field(default_factory=HopHistogram)
    #: Delivered messages per node over the run (load balance).
    node_load: Dict[Hashable, int] = field(default_factory=dict)
    #: Total nodes in the network (so unloaded nodes count toward balance).
    universe_size: int = 0

    def observe_request(
        self, ok: bool, locates: int, retries: int, from_cache: bool,
        locate_hops: int, total_hops: int,
    ) -> None:
        """Fold one request's outcome into the aggregates."""
        self.requests += 1
        if ok:
            self.successes += 1
        else:
            self.failures += 1
        if from_cache and locates == 0:
            self.cache_hits += 1
        self.locates += locates
        self.stale_retries += retries
        self.locate_hops.add(locate_hops)
        self.request_hops.add(total_hops)

    def observe_churn(self, kind: str) -> None:
        """Count one resolved churn event."""
        self.churn_events[kind] = self.churn_events.get(kind, 0) + 1

    def observe_fault(self, kind: str) -> None:
        """Count one executed fault-timeline event."""
        self.fault_events[kind] = self.fault_events.get(kind, 0) + 1

    # -- derived quantities ---------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered without any locate."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def success_rate(self) -> float:
        """Fraction of requests that completed."""
        return self.successes / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Operational alias for :attr:`success_rate`: the fraction of
        requests the system served while churn and fault timelines played
        out — the matrix engine's headline robustness number."""
        return self.success_rate

    def load_balance(self) -> Dict[str, float]:
        """Per-node load summary: mean, max and the max/mean imbalance.

        An imbalance near 1 is the paper's "distributed evenly"; a
        centralized name server shows imbalance near n.
        """
        if not self.node_load:
            return {"nodes": self.universe_size, "mean": 0.0, "max": 0,
                    "imbalance": 0.0}
        loads = list(self.node_load.values())
        # Nodes that received nothing still dilute the mean: a centralized
        # name server on a 64-node network is imbalance ~64, not 1.
        population = max(self.universe_size, len(loads))
        mean = sum(loads) / population
        peak = max(loads)
        return {
            "nodes": population,
            "mean": round(mean, 3),
            "max": peak,
            "imbalance": round(peak / mean, 3) if mean else 0.0,
        }

    def hottest_nodes(self, limit: int = 5) -> List[Tuple[str, int]]:
        """The ``limit`` most-loaded nodes as ``(repr(node), load)``."""
        ranked = sorted(
            ((repr(node), load) for node, load in self.node_load.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:limit]

    def summary(self) -> Dict[str, object]:
        """A deterministic, JSON-safe digest of the whole run.

        Two runs of the same scenario spec produce byte-identical summaries;
        the driver's wall-clock numbers deliberately live outside this dict.
        """
        return {
            "requests": self.requests,
            "successes": self.successes,
            "failures": self.failures,
            "success_rate": round(self.success_rate, 4),
            "locates": self.locates,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "stale_retries": self.stale_retries,
            "churn_events": dict(sorted(self.churn_events.items())),
            "fault_events": dict(sorted(self.fault_events.items())),
            "locate_hops": self.locate_hops.to_dict(),
            "request_hops": self.request_hops.to_dict(),
            "load": self.load_balance(),
            # Lists, not tuples, so the dict is canonical under a JSON
            # round-trip (persisted matrix cells compare equal after reload).
            "hottest_nodes": [list(pair) for pair in self.hottest_nodes()],
        }


def merge_node_load(
    metrics: WorkloadMetrics, node_load: Dict[Hashable, int], baseline: Optional[Dict[Hashable, int]] = None
) -> None:
    """Install a run's per-node load (``end - baseline``) into ``metrics``."""
    base = baseline or {}
    for node, load in node_load.items():
        delta = load - base.get(node, 0)
        if delta:
            metrics.node_load[node] = delta
