"""Production-style metrics for workload runs.

The paper compares strategies by worst-case and average message counts; a
production service is judged by distributions — tail percentiles, hit
rates, hotspots.  Every measurement here is an instrument in a
:class:`~repro.obs.registry.MetricsRegistry`: counters for the request
stream, counter families for churn/fault activity and per-node load, exact
integer histograms (:class:`HopHistogram`) for hop distributions.  Because
registry merges are associative, two runs' metrics — or one matrix's
per-cell metrics — fold together exactly like matrix cells do, and the
merged percentiles equal the ones a single combined run would report.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Optional, Tuple

from typing import TYPE_CHECKING

from ..obs.registry import CounterMap, Histogram, MetricsRegistry, Timeline

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from .spec import SloSpec


class HopHistogram(Histogram):
    """An exact histogram of small non-negative integer hop samples.

    A thin name over :class:`~repro.obs.registry.Histogram` in exact mode:
    hop counts are small integers, so percentiles cost O(distinct values),
    not O(samples), and ``merge`` adds bucket counts exactly.
    """

    def __init__(self) -> None:
        super().__init__(buckets=None)


#: Log-spaced microsecond bounds (1-2-5 per decade, 1us .. 500s) shared by
#: every latency-shaped histogram, so merges across runs and matrix cells
#: always see an identical bucket layout.
LATENCY_BUCKETS_US: Tuple[int, ...] = tuple(
    mantissa * 10 ** exponent for exponent in range(9) for mantissa in (1, 2, 5)
)


#: Telemetry window width (virtual microseconds) when the scenario has no
#: SLO to supply one: half a virtual second, wide enough that light smoke
#: runs keep a handful of windows, narrow enough to localize a burst.
DEFAULT_WINDOW_US = 500_000


class LatencyHistogram(Histogram):
    """A fixed log-bucket histogram of integer-microsecond samples.

    Latencies are continuous-ish (jitter, queueing), so the exact-mode
    histogram would grow one bucket per distinct value; the fixed 1-2-5
    decade grid keeps summaries small and merges layout-compatible.  Tail
    behaviour is the whole point of a time model, so the summary adds a
    p99.9 to the registry histogram's standard p50/p95/p99.
    """

    def __init__(self) -> None:
        super().__init__(buckets=LATENCY_BUCKETS_US)

    def to_dict(self) -> Dict[str, object]:
        data = super().to_dict()
        data["p999"] = self.percentile(99.9)
        return data


class WorkloadMetrics:
    """Aggregated measurements of one workload run, registry-backed.

    The public shape is unchanged from the pre-registry implementation —
    integer properties (``requests``, ``cache_hits``...), dict-shaped
    counter families (``churn_events``, ``fault_events``, ``node_load``)
    and :class:`HopHistogram` handles — but every instrument now lives in
    one :class:`~repro.obs.registry.MetricsRegistry`, so whole-run metrics
    :meth:`merge` associatively and export losslessly (histogram buckets
    included) for ``python -m repro obs``.
    """

    def __init__(self, universe_size: int = 0) -> None:
        registry = MetricsRegistry()
        self._registry = registry
        self._requests = registry.counter("requests")
        self._successes = registry.counter("successes")
        self._failures = registry.counter("failures")
        #: Requests served straight from the client's address cache (no
        #: locate).
        self._cache_hits = registry.counter("cache_hits")
        self._locates = registry.counter("locates")
        self._stale_retries = registry.counter("stale_retries")
        #: Resolved population-churn events by kind.
        self.churn_events: CounterMap = registry.counter_map("churn_events")
        #: Substrate fault-timeline events executed during the run (crash
        #: waves, link flaps, partitions...), by trace-op kind.  Separate
        #: from ``churn_events``, which counts population churn.
        self.fault_events: CounterMap = registry.counter_map("fault_events")
        #: Hops spent on match-making (query + reply) per request.
        self.locate_hops: HopHistogram = registry.register(
            "locate_hops", HopHistogram()
        )
        #: Total hops (match-making + payload round trip) per request.
        self.request_hops: HopHistogram = registry.register(
            "request_hops", HopHistogram()
        )
        #: Delivered messages per node over the run (load balance).
        self.node_load: CounterMap = registry.counter_map("node_load")
        #: Total nodes in the network (so unloaded nodes count toward
        #: balance).  A gauge: merging runs keeps the largest universe.
        self._universe = registry.gauge("universe_size")
        self._universe.set(universe_size)
        #: Timed-run instruments (see :meth:`enable_timing`): ``None`` until
        #: a time model attaches, so an untimed run's registry, export and
        #: summary never mention them.
        self.request_latency: Optional[LatencyHistogram] = None
        self.queue_wait: Optional[LatencyHistogram] = None
        self.queue_depth: Optional[HopHistogram] = None
        self._message_timeouts = None
        self.link_busy: Optional[CounterMap] = None
        self._virtual_horizon = None
        #: Virtual-time windowed telemetry (timed runs only).
        self.timeline: Optional[Timeline] = None
        #: Critical-path blame per ``phase:kind:where`` contributor
        #: (timed runs only; see :mod:`repro.obs.attr`).
        self.critical_path: Optional[CounterMap] = None
        self._slo: Optional["SloSpec"] = None

    # -- registry plumbing ----------------------------------------------------

    @property
    def registry(self) -> MetricsRegistry:
        """The backing registry (what the obs export serializes)."""
        return self._registry

    def merge(self, other: "WorkloadMetrics") -> None:
        """Fold another run's metrics in — associative, like matrix cells."""
        self._registry.merge(other._registry)

    # -- counter properties (read shape of the old dataclass fields) ----------

    @property
    def requests(self) -> int:
        return self._requests.value

    @property
    def successes(self) -> int:
        return self._successes.value

    @property
    def failures(self) -> int:
        return self._failures.value

    @property
    def cache_hits(self) -> int:
        return self._cache_hits.value

    @property
    def locates(self) -> int:
        return self._locates.value

    @property
    def stale_retries(self) -> int:
        return self._stale_retries.value

    @property
    def universe_size(self) -> int:
        return int(self._universe.value)

    # -- observation ----------------------------------------------------------

    def observe_request(
        self, ok: bool, locates: int, retries: int, from_cache: bool,
        locate_hops: int, total_hops: int,
    ) -> None:
        """Fold one request's outcome into the aggregates."""
        self._requests.inc()
        if ok:
            self._successes.inc()
        else:
            self._failures.inc()
        if from_cache and locates == 0:
            self._cache_hits.inc()
        self._locates.inc(locates)
        self._stale_retries.inc(retries)
        self.locate_hops.add(locate_hops)
        self.request_hops.add(total_hops)

    def observe_churn(self, kind: str) -> None:
        """Count one resolved churn event."""
        self.churn_events.bump(kind)

    def observe_fault(self, kind: str) -> None:
        """Count one executed fault-timeline event."""
        self.fault_events.bump(kind)

    # -- timed runs (repro.simtime) -------------------------------------------

    def enable_timing(self, slo: Optional["SloSpec"] = None) -> None:
        """Register the timed-run instruments (idempotent).

        Called only when a scenario carries a time model.  The digest
        contract of untimed runs is *absence*: none of these names appear
        in the registry, the obs export or :meth:`summary` unless timing
        was enabled, which keeps ``time_model=None`` results byte-identical
        to pre-simtime builds.

        ``slo`` sets the telemetry window width (its ``window``) and arms
        per-window burn-rate evaluation; without one the timeline still
        records at :data:`DEFAULT_WINDOW_US` but :meth:`summary` gains no
        ``slo`` section (so pre-SLO timed digests are preserved too).
        """
        if self.timed:
            return
        registry = self._registry
        #: Virtual request latency: op arrival to last message delivered.
        self.request_latency = registry.register(
            "request_latency_us", LatencyHistogram()
        )
        #: Wait suffered at each queue visit (0 = no contention).
        self.queue_wait = registry.register(
            "queue_wait_us", LatencyHistogram()
        )
        #: Queue depth sampled at each message arrival (small exact ints).
        self.queue_depth = registry.register("queue_depth", HopHistogram())
        self._message_timeouts = registry.counter("message_timeouts")
        #: Busy microseconds per link (keyed by simtime ``link_key``).
        self.link_busy = registry.counter_map("link_busy_us")
        #: The run's virtual horizon: the latest message completion time.
        self._virtual_horizon = registry.gauge("virtual_time_us")
        self._slo = slo
        width_us = (
            max(1, int(round(slo.window * 1_000_000)))
            if slo is not None else DEFAULT_WINDOW_US
        )
        #: Per-window admitted/dropped/served/latency stream.
        self.timeline = registry.timeline("timeline", width_us)
        #: Critical-path microseconds per (phase, kind, where) contributor.
        self.critical_path = registry.counter_map("critical_path_us")

    @property
    def timed(self) -> bool:
        """Whether the timed instruments are registered on this run."""
        return self.request_latency is not None

    def observe_latency(
        self, latency_us: int, at_us: Optional[int] = None, ok: bool = True
    ) -> None:
        """Record one request's virtual latency in microseconds.

        ``at_us`` — the request's *completion* time on the virtual clock —
        additionally streams the request into its telemetry window:
        served/failed counts, the latency sum and the window's latency
        peak, plus the SLO-bad count when an objective is armed.
        """
        self.request_latency.add(latency_us)
        if at_us is None or self.timeline is None:
            return
        slo = self._slo
        self.timeline.bump(
            at_us,
            served=1,
            failed=0 if ok else 1,
            latency_sum_us=latency_us,
            bad_latency=(
                1 if slo is not None
                and latency_us > slo.latency_objective * 1_000_000
                else 0
            ),
        )
        self.timeline.mark(at_us, latency_us_max=latency_us)

    def observe_admission(
        self, at_us: int, dropped: bool, depth: int
    ) -> None:
        """Stream one queue-admission event into its telemetry window."""
        if self.timeline is None:
            return
        self.timeline.bump(
            at_us, admitted=0 if dropped else 1, dropped=1 if dropped else 0
        )
        self.timeline.mark(at_us, depth_peak=depth)

    def observe_critical(self, contributor: str, segment_us: int) -> None:
        """Blame ``segment_us`` critical-path microseconds on a
        ``phase:kind:where`` contributor."""
        if self.critical_path is not None and segment_us:
            self.critical_path.bump(contributor, segment_us)

    def observe_queue_wait(self, wait_us: int) -> None:
        """Record the wait one message suffered at one queue."""
        self.queue_wait.add(wait_us)

    def observe_queue_depth(self, depth: int) -> None:
        """Record the queue depth one message saw on arrival."""
        self.queue_depth.add(depth)

    def observe_timeout(self) -> None:
        """Count one message dropped by a queue-wait timeout."""
        self._message_timeouts.inc()

    def add_link_busy(self, key: str, busy_us: int) -> None:
        """Accumulate service time carried by the link ``key``."""
        self.link_busy.bump(key, busy_us)

    def set_virtual_horizon(self, horizon_us: int) -> None:
        """Install the run's virtual end-of-time (drives utilization)."""
        self._virtual_horizon.set(horizon_us)

    @property
    def message_timeouts(self) -> int:
        return self._message_timeouts.value if self._message_timeouts else 0

    @property
    def virtual_time_us(self) -> int:
        return int(self._virtual_horizon.value) if self._virtual_horizon else 0

    def slo_summary(self) -> Optional[Dict[str, object]]:
        """The SLO burn record, or ``None`` when no objective is armed.

        Burn rate is the error budget's spend speed: the observed bad
        fraction divided by the budgeted bad fraction (``1 - target``) —
        1.0 exactly spends the budget, 2.0 burns it twice as fast.  The
        whole-run rates use every served request; the per-window scan
        finds the *first* window whose own burn exceeds 1 (latency or
        availability), which is when a pager would have fired.
        """
        slo = self._slo
        if slo is None or self.timeline is None:
            return None
        latency_budget = 1.0 - slo.latency_target
        availability_budget = 1.0 - slo.availability_target
        served = self.timeline.total("served")
        bad_latency = self.timeline.total("bad_latency")
        failed = self.timeline.total("failed")
        first_breach_us: Optional[int] = None
        breached = 0
        for index, fields in self.timeline.windows():
            window_served = fields.get("served", 0)
            if not window_served:
                continue
            latency_burn = (
                fields.get("bad_latency", 0) / window_served / latency_budget
            )
            availability_burn = (
                fields.get("failed", 0) / window_served / availability_budget
            )
            if latency_burn > 1.0 or availability_burn > 1.0:
                breached += 1
                if first_breach_us is None:
                    first_breach_us = index * self.timeline.width_us
        return {
            "objective_us": int(round(slo.latency_objective * 1_000_000)),
            "latency_target": slo.latency_target,
            "availability_target": slo.availability_target,
            "window_us": self.timeline.width_us,
            "served": served,
            "bad_latency": bad_latency,
            "failed": failed,
            "latency_burn_rate": round(
                bad_latency / served / latency_budget, 4
            ) if served else 0.0,
            "availability_burn_rate": round(
                failed / served / availability_budget, 4
            ) if served else 0.0,
            "windows": len(self.timeline),
            "breached_windows": breached,
            "first_breach_us": first_breach_us,
        }

    def link_utilization(self, limit: int = 5) -> Dict[str, float]:
        """The ``limit`` busiest links as ``{link_key: busy/horizon}``."""
        horizon = self.virtual_time_us
        if not horizon or not self.link_busy:
            return {}
        ranked = sorted(
            self.link_busy.items(), key=lambda pair: (-pair[1], pair[0])
        )
        return {key: round(busy / horizon, 4) for key, busy in ranked[:limit]}

    # -- derived quantities ---------------------------------------------------

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of requests answered without any locate."""
        return self.cache_hits / self.requests if self.requests else 0.0

    @property
    def success_rate(self) -> float:
        """Fraction of requests that completed."""
        return self.successes / self.requests if self.requests else 0.0

    @property
    def availability(self) -> float:
        """Operational alias for :attr:`success_rate`: the fraction of
        requests the system served while churn and fault timelines played
        out — the matrix engine's headline robustness number."""
        return self.success_rate

    def load_balance(self) -> Dict[str, float]:
        """Per-node load summary: mean, max and the max/mean imbalance.

        An imbalance near 1 is the paper's "distributed evenly"; a
        centralized name server shows imbalance near n.
        """
        if not self.node_load:
            return {"nodes": self.universe_size, "mean": 0.0, "max": 0,
                    "imbalance": 0.0}
        loads = list(self.node_load.values())
        # Nodes that received nothing still dilute the mean: a centralized
        # name server on a 64-node network is imbalance ~64, not 1.
        population = max(self.universe_size, len(loads))
        mean = sum(loads) / population
        peak = max(loads)
        return {
            "nodes": population,
            "mean": round(mean, 3),
            "max": peak,
            "imbalance": round(peak / mean, 3) if mean else 0.0,
        }

    def hottest_nodes(self, limit: int = 5) -> List[Tuple[str, int]]:
        """The ``limit`` most-loaded nodes as ``(repr(node), load)``."""
        ranked = sorted(
            ((repr(node), load) for node, load in self.node_load.items()),
            key=lambda pair: (-pair[1], pair[0]),
        )
        return ranked[:limit]

    def summary(self) -> Dict[str, object]:
        """A deterministic, JSON-safe digest of the whole run.

        Two runs of the same scenario spec produce byte-identical summaries;
        the driver's wall-clock numbers deliberately live outside this dict.
        Timed runs append ``latency`` and ``queues`` sections; untimed runs
        omit the keys entirely (the digest-neutrality contract).
        """
        data: Dict[str, object] = {
            "requests": self.requests,
            "successes": self.successes,
            "failures": self.failures,
            "success_rate": round(self.success_rate, 4),
            "locates": self.locates,
            "cache_hits": self.cache_hits,
            "cache_hit_rate": round(self.cache_hit_rate, 4),
            "stale_retries": self.stale_retries,
            "churn_events": dict(sorted(self.churn_events.items())),
            "fault_events": dict(sorted(self.fault_events.items())),
            "locate_hops": self.locate_hops.to_dict(),
            "request_hops": self.request_hops.to_dict(),
            "load": self.load_balance(),
            # Lists, not tuples, so the dict is canonical under a JSON
            # round-trip (persisted matrix cells compare equal after reload).
            "hottest_nodes": [list(pair) for pair in self.hottest_nodes()],
        }
        if self.timed:
            data["latency"] = self.request_latency.to_dict()
            data["queues"] = {
                "depth": self.queue_depth.to_dict(),
                "wait_us": self.queue_wait.to_dict(),
                "message_timeouts": self.message_timeouts,
                "virtual_us": self.virtual_time_us,
                "link_utilization": self.link_utilization(),
            }
            # The "slo" key exists only when the spec armed an objective,
            # so timed scenarios without one keep their pre-SLO summaries
            # (and digests) byte-identical.
            slo = self.slo_summary()
            if slo is not None:
                data["slo"] = slo
        return data


def merge_node_load(
    metrics: WorkloadMetrics, node_load: Dict[Hashable, int], baseline: Optional[Dict[Hashable, int]] = None
) -> None:
    """Install a run's per-node load (``end - baseline``) into ``metrics``."""
    base = baseline or {}
    for node, load in node_load.items():
        delta = load - base.get(node, 0)
        if delta:
            metrics.node_load[node] = delta
