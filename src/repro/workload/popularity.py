"""Popularity models: which service each request targets.

A popularity model maps ``(rng, now)`` to a port index.  The interesting
models are skewed — real request traffic concentrates on few hot services —
which is exactly what stresses a match-making strategy's load balance: a
centralized or hashed name server melts under a hotspot while the paper's
distributed strategies spread the same traffic evenly.
"""

from __future__ import annotations

import abc
import bisect
import random
from typing import List

from .spec import PopularitySpec


class PopularityModel(abc.ABC):
    """Base class: a reproducible port-index chooser."""

    kind = "popularity"

    def __init__(self, ports: int) -> None:
        if ports < 1:
            raise ValueError("need at least one port")
        self._ports = ports

    @property
    def ports(self) -> int:
        """Number of distinct services."""
        return self._ports

    @abc.abstractmethod
    def pick(self, rng: random.Random, now: float) -> int:
        """The port index of the next request, issued at time ``now``."""


class UniformPopularity(PopularityModel):
    """Every service equally popular."""

    kind = "uniform"

    def pick(self, rng: random.Random, now: float) -> int:
        return rng.randrange(self._ports)


class ZipfPopularity(PopularityModel):
    """Zipf-distributed popularity: port ``k`` has weight ``1/(k+1)^s``.

    Port 0 is the hottest.  Sampling inverts the cumulative weight table
    with a binary search, so a pick is O(log ports).
    """

    kind = "zipf"

    def __init__(self, ports: int, exponent: float = 1.1) -> None:
        super().__init__(ports)
        if exponent <= 0:
            raise ValueError("exponent must be positive")
        self._exponent = exponent
        self._cumulative: List[float] = []
        total = 0.0
        for rank in range(1, ports + 1):
            total += 1.0 / rank**exponent
            self._cumulative.append(total)

    def pick(self, rng: random.Random, now: float) -> int:
        target = rng.random() * self._cumulative[-1]
        return bisect.bisect_left(self._cumulative, target)


class MovingHotspotPopularity(PopularityModel):
    """One hot service takes most of the traffic, and the hotspot moves.

    At time ``t`` the hot port is ``(t // interval) mod ports``; it receives
    ``fraction`` of the requests, the rest spread uniformly over the other
    ports.  Each hotspot move invalidates whatever locality clients and
    caches had built up — the adversarial case for cache-heavy designs.
    """

    kind = "hotspot"

    def __init__(
        self, ports: int, fraction: float = 0.8, interval: float = 5.0
    ) -> None:
        super().__init__(ports)
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if interval <= 0:
            raise ValueError("interval must be positive")
        self._fraction = fraction
        self._interval = interval

    def hot_port(self, now: float) -> int:
        """The index of the hot port at time ``now``."""
        return int(now // self._interval) % self._ports

    def pick(self, rng: random.Random, now: float) -> int:
        hot = self.hot_port(now)
        if self._ports == 1 or rng.random() < self._fraction:
            return hot
        other = rng.randrange(self._ports - 1)
        return other if other < hot else other + 1


def from_spec(spec: PopularitySpec, ports: int) -> PopularityModel:
    """Build the popularity model a :class:`PopularitySpec` describes."""
    if spec.kind == "uniform":
        return UniformPopularity(ports)
    if spec.kind == "zipf":
        return ZipfPopularity(ports, exponent=spec.zipf_exponent)
    if spec.kind == "hotspot":
        return MovingHotspotPopularity(
            ports, fraction=spec.hotspot_fraction, interval=spec.hotspot_interval
        )
    raise ValueError(f"unknown popularity kind {spec.kind!r}")
