"""Trace-driven workload engine: traffic generation, churn and metrics.

The paper evaluates match-making strategies one locate at a time; the
motivating system (Amoeba's processor pool) serves continuous streams of
requests against a shifting population of servers.  This subpackage closes
that gap: declarative :class:`ScenarioSpec`\\ s compose arrival processes
(closed-loop, Poisson, bursts), popularity models (uniform, Zipf, moving
hotspot) and churn models (migration, failover, invalidation storms); the
:class:`WorkloadDriver` executes tens of thousands of operations against a
:class:`~repro.processes.system.DistributedSystem` and measures the result
like a production service — hop percentiles, cache hit rates, per-node load
— with byte-exact trace record/replay for reproducibility.

Beyond single scenarios, :class:`FaultRegimeSpec` schedules substrate fault
timelines (crash/recover waves, link flaps, region partitions, correlated
failures) that advance the fault-plan revision mid-run, and the
scenario-matrix engine (:class:`MatrixSpec` / :func:`run_matrix`) expands
topology × strategy × fault-regime grids into cells that share one network
per topology and aggregate into a comparable :class:`MatrixReport`.  Every
cell's random streams derive from a stable hash of its grid coordinates
(:func:`stable_seed`), so ``run_matrix(..., workers=N)`` can shard the grid
across worker processes (see :mod:`repro.exec`) and merge a report
byte-identical to the sequential run.

Quick start::

    from repro.workload import ScenarioSpec, PopularitySpec, run_scenario

    spec = ScenarioSpec(
        name="soak",
        topology="manhattan:8",
        strategy="checkerboard",
        operations=20_000,
        clients=32,
        servers=8,
        ports=8,
        popularity=PopularitySpec(kind="zipf"),
    )
    result = run_scenario(spec)
    print(result.summary()["locate_hops"])   # {'p50': ..., 'p95': ..., ...}
"""

from .arrivals import (
    ArrivalProcess,
    BurstArrivals,
    ClosedLoopArrivals,
    PoissonArrivals,
)
from .churn import (
    ChurnEvent,
    ChurnModel,
    FailoverChurn,
    MigrationChurn,
    MixedChurn,
    NoChurn,
    StormChurn,
)
from .driver import (
    WorkloadDriver,
    WorkloadResult,
    compare_under_load,
    replay_trace,
    run_scenario,
    workload_table,
)
from .matrix import (
    CellResult,
    MatrixCell,
    MatrixReport,
    MatrixSpec,
    run_cell,
    run_matrix,
    write_cell_trace,
)
from .metrics import HopHistogram, WorkloadMetrics
from .popularity import (
    MovingHotspotPopularity,
    PopularityModel,
    UniformPopularity,
    ZipfPopularity,
)
from .spec import (
    ArrivalSpec,
    ChurnSpec,
    FaultRegimeSpec,
    PopularitySpec,
    ScenarioSpec,
    SloSpec,
    build_fault_timeline,
    build_strategy,
    build_topology,
    stable_seed,
    strategy_names,
)
from .trace import Trace, TraceOp, canonical_digest

__all__ = [
    "ArrivalProcess",
    "ArrivalSpec",
    "BurstArrivals",
    "CellResult",
    "ChurnEvent",
    "ChurnModel",
    "ChurnSpec",
    "ClosedLoopArrivals",
    "FailoverChurn",
    "FaultRegimeSpec",
    "HopHistogram",
    "MatrixCell",
    "MatrixReport",
    "MatrixSpec",
    "MigrationChurn",
    "MixedChurn",
    "MovingHotspotPopularity",
    "NoChurn",
    "PoissonArrivals",
    "PopularityModel",
    "PopularitySpec",
    "ScenarioSpec",
    "SloSpec",
    "StormChurn",
    "Trace",
    "TraceOp",
    "UniformPopularity",
    "WorkloadDriver",
    "WorkloadMetrics",
    "WorkloadResult",
    "ZipfPopularity",
    "build_fault_timeline",
    "build_strategy",
    "build_topology",
    "canonical_digest",
    "compare_under_load",
    "replay_trace",
    "run_cell",
    "run_matrix",
    "run_scenario",
    "stable_seed",
    "strategy_names",
    "workload_table",
    "write_cell_trace",
]
