"""The workload driver: runs a scenario spec as production-style traffic.

The driver turns a declarative :class:`~repro.workload.spec.ScenarioSpec`
into tens of thousands of executed operations against a freshly built
:class:`~repro.processes.system.DistributedSystem`:

1. the arrival process, popularity model and churn model are materialized
   into one time-ordered program (each concern on its own seeded generator,
   so streams do not perturb each other);
2. every abstract step is resolved against live system state into a concrete
   :class:`~repro.workload.trace.TraceOp` (which server migrates to which
   node, which nodes a storm wipes) and executed through a single op
   interpreter — the same interpreter replays recorded traces, which is what
   makes replays exact;
3. hop deltas are read per-operation from the network's counters (integer
   reads, no snapshots on the hot path), and the matchmaker's memoized P/Q
   sets plus the clients' private address caches keep repeated locates off
   the slow path.

Run and replay of the same scenario produce identical
:meth:`~repro.workload.metrics.WorkloadMetrics.summary` dictionaries.
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

from ..core.types import Port
from ..network import faults as _faults
from ..network.simulator import Network
from ..network.stats import PAYLOAD, QUERY, REPLY
from ..obs.profile import TOPOLOGY_BUILD, phase, wall_clock
from ..obs.spans import SpanRecorder, active_tracer, tracing
from ..simtime.binding import TimedOverlay
from ..processes.client import ClientProcess
from ..processes.server import ServerProcess
from ..processes.system import DistributedSystem
from . import arrivals as _arrivals
from . import churn as _churn
from . import popularity as _popularity
from .metrics import WorkloadMetrics, merge_node_load
from .spec import (
    ScenarioSpec,
    build_fault_timeline,
    build_strategy,
    build_topology,
)
from .trace import (
    CRASH,
    FAULT_CRASH,
    FAULT_RECOVER,
    LINK_DOWN,
    LINK_UP,
    MIGRATE,
    RECOVER,
    REQUEST,
    RESPAWN,
    STORM,
    Trace,
    TraceOp,
    canonical_digest,
)


@dataclass
class WorkloadResult:
    """Everything one workload run produced."""

    spec: ScenarioSpec
    metrics: WorkloadMetrics
    trace: Trace
    wall_seconds: float
    #: Delivery-planner cache events over the measured run (plan/tree/route
    #: hit-miss counters from :class:`~repro.network.stats.MessageStats`,
    #: baselined past system construction just like per-node load).
    #: Deterministic — a replay reproduces the exact same counts — but kept
    #: out of :meth:`summary` so summaries compare across planner versions.
    plan_cache: Dict[str, int] = field(default_factory=dict)
    #: The slowest-k request timelines of a timed run (empty when untimed).
    #: Seed-deterministic and replay-identical, but excluded from
    #: :meth:`to_dict` — exemplars are an observability artifact
    #: (``timelines-cell-NNNN.jsonl``), never part of a result digest.
    exemplars: List[Dict[str, object]] = field(default_factory=list)

    @property
    def ops_per_second(self) -> float:
        """Executed requests per wall-clock second (not deterministic)."""
        if self.wall_seconds <= 0:
            return 0.0
        return self.metrics.requests / self.wall_seconds

    def summary(self) -> Dict[str, object]:
        """Deterministic digest: scenario identity plus the run's metrics."""
        return {
            "name": self.spec.name,
            "topology": self.spec.topology,
            "strategy": self.spec.strategy,
            **self.metrics.summary(),
        }

    def to_dict(self) -> Dict[str, object]:
        """The run as one deterministic, JSON-safe dictionary.

        Replaying the run's trace reproduces this dict byte-for-byte.
        Wall-clock throughput and the planner cache counters are deliberately
        excluded: the former is nondeterministic, the latter depends on
        whether the run shared a warm network with earlier matrix cells.
        """
        return {
            "spec": self.spec.to_dict(),
            "summary": self.summary(),
            "trace_ops": self.trace.operation_counts(),
        }

    def digest(self) -> str:
        """SHA-256 over the canonical :meth:`to_dict` JSON.

        Two digests match iff the runs are byte-identical in every
        deterministic respect — the comparison ``python -m repro replay
        --expect`` and the cross-process replay tests make.
        """
        return canonical_digest(self.to_dict())


class _RunState:
    """Mutable per-run execution state (fresh for every run/replay)."""

    def __init__(
        self,
        system: DistributedSystem,
        clients: List[ClientProcess],
        slots: List[ServerProcess],
    ) -> None:
        self.system = system
        self.network = system.network
        self.clients = clients
        #: Server *slots*: slot k always denotes "the k-th logical server";
        #: failover respawns install the replacement process in the same slot.
        self.slots = slots
        self.client_nodes = frozenset(client.node for client in clients)
        #: Timed overlay pricing this run's requests (``None`` = untimed).
        self.overlay: Optional[TimedOverlay] = None


class WorkloadDriver:
    """Executes one scenario: generation, batched driving, measurement.

    Pass ``network`` to run on a shared, pre-built network (the matrix
    engine shares one network per topology so the O(n²) routing construction
    and the delivery planner's fault-free caches amortize across cells); the
    driver resets it to pristine state before every run, so results are
    identical to a run on a freshly built network.
    """

    def __init__(
        self, spec: ScenarioSpec, network: Optional[Network] = None
    ) -> None:
        self.spec = spec
        self._topology = build_topology(spec.topology)
        self._strategy = build_strategy(spec.strategy, self._topology)
        if network is not None:
            graph = self._topology.graph
            same_nodes = network.graph.node_set == graph.node_set
            # Node ids alone are not identity: ring:16 and complete:16 share
            # {0..15} but route completely differently.
            same_edges = same_nodes and (
                {frozenset(edge) for edge in network.graph.edges}
                == {frozenset(edge) for edge in graph.edges}
            )
            if not same_edges:
                raise ValueError(
                    f"shared network (n={network.size}) does not match "
                    f"topology {spec.topology!r}"
                )
        self._shared_network = network
        # A canonical node order gives every node a stable integer index;
        # traces store indices, never raw (possibly tuple-valued) node ids.
        self._nodes: List[Hashable] = sorted(self._topology.nodes(), key=repr)
        self._node_index = {node: i for i, node in enumerate(self._nodes)}
        self._ports = [Port(f"{spec.name}/svc-{i}") for i in range(spec.ports)]

    @property
    def topology(self):
        """The resolved topology."""
        return self._topology

    @property
    def strategy(self):
        """The resolved strategy."""
        return self._strategy

    # -- environment construction ---------------------------------------------

    def _build_state(self) -> _RunState:
        """A fresh network + system with servers and clients placed.

        Placement draws from a dedicated generator derived only from the
        spec's seed, so a replay rebuilds the identical initial system.
        """
        spec = self.spec
        if self._shared_network is not None:
            network = self._shared_network
            network.reset_for_reuse()
        else:
            with phase(TOPOLOGY_BUILD):
                network = self._topology.build_network(
                    delivery_mode=spec.delivery_mode
                )
        system = DistributedSystem(
            network,
            self._strategy,
            delivery_mode=spec.delivery_mode,
            max_retries=spec.max_retries,
        )
        placement = random.Random(f"{spec.seed}/placement")
        slots = [
            system.create_server(
                placement.choice(self._nodes),
                self._ports[slot % spec.ports],
                name=f"srv-{slot}",
            )
            for slot in range(spec.servers)
        ]
        clients = [
            system.create_client(placement.choice(self._nodes), name=f"cli-{i}")
            for i in range(spec.clients)
        ]
        return _RunState(system, clients, slots)

    def _attach_overlay(
        self, state: _RunState, metrics: WorkloadMetrics
    ) -> None:
        """Install the timed overlay when the spec carries a time model.

        Untimed specs leave the network tap empty and the metrics registry
        without timed instruments — the run is bit-for-bit the one a
        pre-simtime build produced.
        """
        model = self.spec.time_model
        if model is None:
            return
        metrics.enable_timing(slo=self.spec.slo)
        state.overlay = TimedOverlay(
            state.network, model, self.spec.seed, metrics
        )
        state.network.attach_tap(state.overlay)

    def _detach_overlay(self, state: _RunState) -> List[Dict[str, object]]:
        """Close out the timed overlay after the run's last op; returns
        its slowest-k exemplar timelines (empty for untimed runs)."""
        exemplars: List[Dict[str, object]] = []
        if state.overlay is not None:
            state.overlay.finalize()
            exemplars = state.overlay.exemplars()
            state.network.detach_tap()
            state.overlay = None
        return exemplars

    # -- the op interpreter ----------------------------------------------------

    def _exec_op(
        self, state: _RunState, metrics: WorkloadMetrics, op: TraceOp
    ) -> None:
        """Execute one fully-resolved operation (run and replay both land
        here).

        When a tracer is active, the op's trace time becomes the logical
        clock every span begun during this op is stamped with — the reason
        span streams are seed-deterministic and replay-identical.  REQUEST
        ops get a ``request`` span wrapping the whole locate/deliver tree;
        churn and fault ops get zero-duration event spans.
        """
        tracer = active_tracer()
        if tracer is not None:
            tracer.set_clock(op.time)
            if op.kind != REQUEST:
                tracer.event(op.kind)
        system = state.system
        if op.kind == REQUEST:
            client_index, port_index = op.args
            client = state.clients[client_index]
            port = self._ports[port_index]
            if not self.spec.cache_addresses:
                client.forget_address(port)
            hops = state.network.stats.hops
            query0 = hops.get(QUERY, 0)
            reply0 = hops.get(REPLY, 0)
            payload0 = hops.get(PAYLOAD, 0)
            request_span = None
            if tracer is not None:
                request_span = tracer.begin(
                    "request", client=client_index, port=port_index
                )
            overlay = state.overlay
            if overlay is not None:
                overlay.begin_request(op.time)
            outcome = system.request(client, port, payload=None)
            locate_hops = (
                hops.get(QUERY, 0) - query0 + hops.get(REPLY, 0) - reply0
            )
            total_hops = locate_hops + hops.get(PAYLOAD, 0) - payload0
            timing_attrs: Dict[str, object] = {}
            if overlay is not None:
                latency_us, completed_at = overlay.finish_request(
                    span_id=request_span, ok=outcome.ok
                )
                timing_attrs["latency_us"] = latency_us
                if tracer is not None:
                    # The request span closes at its virtual completion time
                    # (its begin kept the arrival time from set_clock above).
                    tracer.set_clock(completed_at)
            if tracer is not None:
                tracer.end(
                    request_span,
                    ok=outcome.ok,
                    locate_hops=locate_hops,
                    hops=total_hops,
                    **timing_attrs,
                )
            metrics.observe_request(
                ok=outcome.ok,
                locates=outcome.locates,
                retries=outcome.retries,
                from_cache=outcome.used_cached_address,
                locate_hops=locate_hops,
                total_hops=total_hops,
            )
        elif op.kind == MIGRATE:
            slot, node_index = op.args
            system.migrate_server(state.slots[slot], self._nodes[node_index])
            metrics.observe_churn(MIGRATE)
        elif op.kind in (CRASH, FAULT_CRASH):
            system.crash_node(self._nodes[op.args[0]])
            if op.kind == CRASH:
                metrics.observe_churn(CRASH)
            else:
                metrics.observe_fault(FAULT_CRASH)
        elif op.kind == RESPAWN:
            slot, node_index = op.args
            state.slots[slot] = system.create_server(
                self._nodes[node_index],
                self._ports[slot % self.spec.ports],
                name=f"srv-{slot}",
            )
            metrics.observe_churn(RESPAWN)
        elif op.kind in (RECOVER, FAULT_RECOVER):
            system.recover_node(self._nodes[op.args[0]])
            # The node returns with an empty cache; live servers re-advertise
            # so rendezvous through it works again (fresh timestamps win).
            for server in state.slots:
                if server.accepting:
                    system.refresh_server(server)
            if op.kind == RECOVER:
                metrics.observe_churn(RECOVER)
            else:
                metrics.observe_fault(FAULT_RECOVER)
        elif op.kind == STORM:
            system.invalidate_caches(self._nodes[i] for i in op.args)
            # Servers notice and re-advertise; their fresh timestamps win at
            # every rendezvous node.
            for server in state.slots:
                if server.accepting:
                    system.refresh_server(server)
            metrics.observe_churn(STORM)
        elif op.kind == LINK_DOWN:
            u, v = op.args
            state.network.fail_link(self._nodes[u], self._nodes[v])
            metrics.observe_fault(LINK_DOWN)
        elif op.kind == LINK_UP:
            u, v = op.args
            state.network.restore_link(self._nodes[u], self._nodes[v])
            metrics.observe_fault(LINK_UP)
        else:  # pragma: no cover - TraceOp validates kinds
            raise ValueError(f"unknown op kind {op.kind!r}")

    # -- fault-timeline resolution ---------------------------------------------

    def _fault_op(self, event: _faults.FaultEvent) -> TraceOp:
        """Map one scheduled fault event to a concrete trace op.

        Node events get the FAULT_* op kinds: they execute exactly like
        churn-driven crash/recover (processes die, recovered nodes trigger
        re-advertisement) but are metered as fault events, so the
        churn-versus-fault split in the metrics survives replay.
        """
        if event.kind == _faults.CRASH_NODE:
            return TraceOp(
                FAULT_CRASH, event.time, (self._node_index[event.subject[0]],)
            )
        if event.kind == _faults.RECOVER_NODE:
            return TraceOp(
                FAULT_RECOVER, event.time,
                (self._node_index[event.subject[0]],),
            )
        if event.kind == _faults.LINK_DOWN:
            u, v = event.subject
            return TraceOp(
                LINK_DOWN, event.time, (self._node_index[u], self._node_index[v])
            )
        if event.kind == _faults.LINK_UP:
            u, v = event.subject
            return TraceOp(
                LINK_UP, event.time, (self._node_index[u], self._node_index[v])
            )
        raise ValueError(f"unknown fault event kind {event.kind!r}")

    # -- churn resolution ------------------------------------------------------

    def _up_node_indices(self, state: _RunState) -> List[int]:
        return [
            i for i, node in enumerate(self._nodes)
            if state.network.node_is_up(node)
        ]

    def _resolve_churn(
        self,
        state: _RunState,
        event: _churn.ChurnEvent,
        rng: random.Random,
        pending_recoveries: List[Tuple[float, int]],
    ) -> List[TraceOp]:
        """Turn an abstract churn event into concrete trace ops.

        Resolution consults live state (who is alive, what is up), draws any
        random choices from ``rng``, and may schedule a recovery; the
        returned ops are ready for :meth:`_exec_op`.
        """
        if event.kind == _churn.MIGRATE:
            candidates = [
                slot for slot, server in enumerate(state.slots) if server.accepting
            ]
            ups = self._up_node_indices(state)
            if not candidates or not ups:
                return []
            slot = rng.choice(candidates)
            return [TraceOp(MIGRATE, event.time, (slot, rng.choice(ups)))]

        if event.kind == _churn.FAILOVER:
            # Crash a server-hosting node; keep client hosts up so the
            # request stream survives.
            victims = sorted(
                {
                    self._node_index[server.node]
                    for server in state.slots
                    if server.alive
                    and server.node not in state.client_nodes
                    and state.network.node_is_up(server.node)
                }
            )
            if not victims:
                return []
            victim = rng.choice(victims)
            victim_node = self._nodes[victim]
            killed = [
                slot
                for slot, server in enumerate(state.slots)
                if server.alive and server.node == victim_node
            ]
            ops = [TraceOp(CRASH, event.time, (victim,))]
            ups = [i for i in self._up_node_indices(state) if i != victim]
            for slot in killed:
                if ups:
                    ops.append(TraceOp(RESPAWN, event.time, (slot, rng.choice(ups))))
            heapq.heappush(
                pending_recoveries, (event.time + self.spec.churn.downtime, victim)
            )
            return ops

        if event.kind == _churn.STORM:
            ups = self._up_node_indices(state)
            if not ups:
                return []
            sample_size = max(1, int(self.spec.churn.storm_fraction * len(ups)))
            struck = sorted(rng.sample(ups, sample_size))
            return [TraceOp(STORM, event.time, tuple(struck))]

        raise ValueError(f"unknown churn event kind {event.kind!r}")

    # -- run / replay ----------------------------------------------------------

    def run(self, tracer: Optional[SpanRecorder] = None) -> WorkloadResult:
        """Generate and execute the scenario, recording a replayable trace.

        ``tracer`` collects the run's span tree (``request`` → ``locate`` →
        ``rendezvous-resolve`` → ``route``/``deliver``).  Spans are stamped
        with each op's trace time, never wall clock, so tracing a run
        changes nothing about its results.
        """
        spec = self.spec
        arrival_process = _arrivals.from_spec(spec.arrival)
        popularity_model = _popularity.from_spec(spec.popularity, spec.ports)
        churn_model = _churn.from_spec(spec.churn)

        # One private generator per concern: arrival jitter cannot perturb
        # popularity draws, churn cannot perturb either.
        arrival_rng = random.Random(f"{spec.seed}/arrivals")
        popularity_rng = random.Random(f"{spec.seed}/popularity")
        churn_rng = random.Random(f"{spec.seed}/churn")
        resolve_rng = random.Random(f"{spec.seed}/resolve")

        requests = list(
            arrival_process.arrivals(arrival_rng, spec.operations, spec.clients)
        )
        horizon = requests[-1][0] + 1e-9 if requests else 0.0
        churn_events = churn_model.schedule(churn_rng, horizon)

        state = self._build_state()
        # The fault timeline is materialized against the static graph with
        # its own generator; client hosts are protected (their death would
        # abort the request stream, which is the workload, not the subject).
        fault_rng = random.Random(f"{spec.seed}/faults")
        timeline = build_fault_timeline(
            spec.faults, self._topology.graph, fault_rng,
            protected=state.client_nodes,
        )
        fault_ops = [self._fault_op(event) for event in timeline]
        trace = Trace(spec.to_dict())
        metrics = WorkloadMetrics(universe_size=len(self._nodes))
        load_baseline = dict(state.network.stats.node_load)
        plan_baseline = dict(state.network.stats.plan_events)
        pending_recoveries: List[Tuple[float, int]] = []
        churn_cursor = 0
        fault_cursor = 0
        self._attach_overlay(state, metrics)
        started = wall_clock()  # feeds wall_seconds, which canonical_dict zeroes

        def _drain(until: float) -> None:
            """Execute recoveries, fault events and churn due at or before
            ``until``; ties execute recoveries first, then faults, then
            churn."""
            nonlocal churn_cursor, fault_cursor
            while True:
                recovery_due = (
                    pending_recoveries[0][0] if pending_recoveries else float("inf")
                )
                fault_due = (
                    fault_ops[fault_cursor].time
                    if fault_cursor < len(fault_ops)
                    else float("inf")
                )
                churn_due = (
                    churn_events[churn_cursor].time
                    if churn_cursor < len(churn_events)
                    else float("inf")
                )
                due = min(recovery_due, fault_due, churn_due)
                if due == float("inf") or due > until:
                    return
                if recovery_due == due:
                    due_time, node_index = heapq.heappop(pending_recoveries)
                    op = TraceOp(RECOVER, due_time, (node_index,))
                    trace.append(op)
                    self._exec_op(state, metrics, op)
                elif fault_due == due:
                    op = fault_ops[fault_cursor]
                    fault_cursor += 1
                    trace.append(op)
                    self._exec_op(state, metrics, op)
                else:
                    event = churn_events[churn_cursor]
                    churn_cursor += 1
                    for op in self._resolve_churn(
                        state, event, resolve_rng, pending_recoveries
                    ):
                        trace.append(op)
                        self._exec_op(state, metrics, op)

        with tracing(tracer):
            for now, client_index in requests:
                _drain(now)
                port_index = popularity_model.pick(popularity_rng, now)
                op = TraceOp(REQUEST, now, (client_index, port_index))
                trace.append(op)
                self._exec_op(state, metrics, op)
            _drain(float("inf"))

        wall = wall_clock() - started
        exemplars = self._detach_overlay(state)
        merge_node_load(metrics, state.network.stats.node_load, load_baseline)
        return WorkloadResult(
            spec=spec,
            metrics=metrics,
            trace=trace,
            wall_seconds=wall,
            plan_cache=_plan_cache_delta(state, plan_baseline),
            exemplars=exemplars,
        )

    def replay(
        self, trace: Trace, tracer: Optional[SpanRecorder] = None
    ) -> WorkloadResult:
        """Execute a recorded trace exactly; metrics match the original
        run — and so does the span stream, when ``tracer`` is given."""
        state = self._build_state()
        metrics = WorkloadMetrics(universe_size=len(self._nodes))
        load_baseline = dict(state.network.stats.node_load)
        plan_baseline = dict(state.network.stats.plan_events)
        self._attach_overlay(state, metrics)
        started = wall_clock()  # feeds wall_seconds, which canonical_dict zeroes
        with tracing(tracer):
            for op in trace:
                self._exec_op(state, metrics, op)
        wall = wall_clock() - started
        exemplars = self._detach_overlay(state)
        merge_node_load(metrics, state.network.stats.node_load, load_baseline)
        return WorkloadResult(
            spec=self.spec,
            metrics=metrics,
            trace=trace,
            wall_seconds=wall,
            plan_cache=_plan_cache_delta(state, plan_baseline),
            exemplars=exemplars,
        )


def _plan_cache_delta(
    state: _RunState, baseline: Dict[str, int]
) -> Dict[str, int]:
    """Planner cache events accumulated since ``baseline`` was taken."""
    return {
        kind: count - baseline.get(kind, 0)
        for kind, count in state.network.stats.plan_events.items()
        if count - baseline.get(kind, 0)
    }


def run_scenario(
    spec: ScenarioSpec, tracer: Optional[SpanRecorder] = None
) -> WorkloadResult:
    """Build a driver for ``spec`` and run it once."""
    return WorkloadDriver(spec).run(tracer=tracer)


def replay_trace(trace: Trace) -> WorkloadResult:
    """Replay a recorded trace under the scenario stored in its header."""
    spec = ScenarioSpec.from_dict(trace.scenario)
    return WorkloadDriver(spec).replay(trace)


def compare_under_load(
    base: ScenarioSpec, strategies: Sequence[str]
) -> List[WorkloadResult]:
    """Run the *same* traffic program against several strategies.

    Every run shares the base spec's seed, so arrivals, popularity and churn
    schedules are identical across strategies — only the name server
    changes, which is exactly the comparison the paper's section 2.3 makes.
    """
    return [run_scenario(base.with_strategy(name)) for name in strategies]


def workload_table(results: Sequence[WorkloadResult]) -> List[Dict[str, object]]:
    """Compact per-strategy rows for report tables and benchmark output.

    Rows are fully deterministic (wall-clock throughput deliberately lives
    on :class:`WorkloadResult`, not here), so reports built from them can be
    compared byte-for-byte.
    """
    rows = []
    for result in results:
        metrics = result.metrics
        load = metrics.load_balance()
        rows.append(
            {
                "strategy": result.spec.strategy,
                "requests": metrics.requests,
                "ok%": round(100 * metrics.success_rate, 1),
                "locates": metrics.locates,
                "hit%": round(100 * metrics.cache_hit_rate, 1),
                "stale": metrics.stale_retries,
                "p50 hops": metrics.locate_hops.percentile(50),
                "p95 hops": metrics.locate_hops.percentile(95),
                "p99 hops": metrics.locate_hops.percentile(99),
                "load max/mean": load["imbalance"],
            }
        )
    return rows
