"""Trace record/replay: a workload run as a byte-reproducible artifact.

A :class:`Trace` is the fully-resolved operation stream of one run — every
request and every concrete churn action, in execution order, with all
targets reduced to integer indices (client #, port #, node #, server slot #)
so the stream serializes to JSON lines regardless of node-id types (grid
tuples, bit strings, ...).

Replaying a trace through the driver executes exactly the recorded
operations against a freshly built system and must reproduce the original
metrics exactly; recording a run and shipping the ``.jsonl`` file is how a
surprising result travels between machines.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass
from typing import Dict, IO, Iterator, List, Optional, Sequence, Tuple

#: Trace operation kinds.  Fault-timeline node events get their own kinds
#: (same execution semantics as churn-driven crash/recover, but metered as
#: fault events, so replays reproduce the churn/fault split exactly).
REQUEST = "request"    # args: (client_index, port_index)
MIGRATE = "migrate"    # args: (server_slot, target_node_index)
CRASH = "crash"        # args: (node_index,)
RECOVER = "recover"    # args: (node_index,)
RESPAWN = "respawn"    # args: (server_slot, target_node_index)
STORM = "storm"        # args: (node_index, node_index, ...)
FAULT_CRASH = "fault_crash"      # args: (node_index,)
FAULT_RECOVER = "fault_recover"  # args: (node_index,)
LINK_DOWN = "link_down"  # args: (node_index_u, node_index_v)
LINK_UP = "link_up"      # args: (node_index_u, node_index_v)

OP_KINDS = (
    REQUEST, MIGRATE, CRASH, RECOVER, RESPAWN, STORM,
    FAULT_CRASH, FAULT_RECOVER, LINK_DOWN, LINK_UP,
)


def canonical_digest(payload) -> str:
    """SHA-256 hex digest of ``payload``'s canonical bytes.

    Strings are hashed as-is; anything else is hashed as its sorted-keys
    JSON.  Every "byte-identical" comparison in the workload layer
    (``Trace.digest``, ``WorkloadResult.digest``,
    ``MatrixReport.digest``) funnels through here, so the canonical form
    cannot drift between artifact types.
    """
    if not isinstance(payload, str):
        payload = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


@dataclass(frozen=True)
class TraceOp:
    """One fully-resolved operation of a workload run."""

    kind: str
    time: float
    args: Tuple[int, ...]

    def __post_init__(self) -> None:
        if self.kind not in OP_KINDS:
            raise ValueError(
                f"unknown trace op kind {self.kind!r}; expected one of {OP_KINDS}"
            )

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe representation."""
        return {"op": self.kind, "t": self.time, "args": list(self.args)}

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "TraceOp":
        """Rebuild an op from :meth:`to_dict` output."""
        return cls(
            kind=str(data["op"]),
            time=float(data["t"]),
            args=tuple(int(a) for a in data["args"]),  # type: ignore[union-attr]
        )


class Trace:
    """An ordered operation stream plus the scenario it was captured under."""

    def __init__(
        self,
        scenario: Dict[str, object],
        ops: Optional[Sequence[TraceOp]] = None,
    ) -> None:
        self._scenario = dict(scenario)
        self._ops: List[TraceOp] = list(ops) if ops else []

    @property
    def scenario(self) -> Dict[str, object]:
        """The ``ScenarioSpec.to_dict()`` this trace was recorded under."""
        return dict(self._scenario)

    @property
    def ops(self) -> List[TraceOp]:
        """The recorded operations, in execution order."""
        return list(self._ops)

    def append(self, op: TraceOp) -> None:
        """Record one executed operation."""
        self._ops.append(op)

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[TraceOp]:
        return iter(self._ops)

    def operation_counts(self) -> Dict[str, int]:
        """How many ops of each kind the trace holds."""
        counts: Dict[str, int] = {}
        for op in self._ops:
            counts[op.kind] = counts.get(op.kind, 0) + 1
        return counts

    # -- serialization -------------------------------------------------------

    def dump(self, fp: IO[str]) -> None:
        """Write JSON lines: a header with the scenario, then one op per
        line."""
        fp.write(json.dumps({"scenario": self._scenario}, sort_keys=True) + "\n")
        for op in self._ops:
            fp.write(json.dumps(op.to_dict(), sort_keys=True) + "\n")

    @classmethod
    def load(cls, fp: IO[str]) -> "Trace":
        """Read a trace written by :meth:`dump`."""
        header_line = fp.readline()
        if not header_line.strip():
            raise ValueError("empty trace stream")
        header = json.loads(header_line)
        if "scenario" not in header:
            raise ValueError("trace stream is missing the scenario header")
        trace = cls(scenario=header["scenario"])
        for line in fp:
            if line.strip():
                trace.append(TraceOp.from_dict(json.loads(line)))
        return trace

    def digest(self) -> str:
        """SHA-256 over the serialized stream — trace identity in one
        string.

        Two traces with equal digests serialize to the same bytes: same
        scenario header, same operations in the same order.  Used to pin
        that a trace recorded inside a worker process is exactly the trace
        the parent merges.
        """
        buffer = io.StringIO()
        self.dump(buffer)
        return canonical_digest(buffer.getvalue())

    def to_path(self, path) -> None:
        """Write the trace to ``path`` as JSON lines."""
        with open(path, "w", encoding="utf-8") as fp:
            self.dump(fp)

    @classmethod
    def from_path(cls, path) -> "Trace":
        """Read a trace file written by :meth:`to_path`."""
        with open(path, "r", encoding="utf-8") as fp:
            return cls.load(fp)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Trace(scenario={self._scenario.get('name')!r}, ops={len(self._ops)})"
        )
