"""The scenario-matrix engine: grids of workloads, run comparably.

The paper's central claim is a *trade-off*: match-making cost and robustness
move against each other as the rendezvous strategy and the topology change.
One hand-picked (topology, strategy, fault) triple cannot show a trade-off —
a grid can.  :class:`MatrixSpec` declares the grid (topologies × strategies ×
fault regimes, optionally × arrival/popularity/churn models), ``expand()``
turns it into concrete :class:`~repro.workload.spec.ScenarioSpec`\\ s (cells
whose strategy cannot run on their topology are skipped and reported, not
silently dropped), and :func:`run_matrix` executes every cell through the
batched driver.

Cells of the same topology share one :class:`~repro.network.Network` — and
therefore one static routing table and one
:class:`~repro.network.delivery.DeliveryPlanner` — so the O(n²) routing
construction is paid once per topology, not once per cell, and fault-free
plan caches stay warm across cells.  The driver resets the shared network
before each run, so every cell's metrics are byte-identical to a run on a
fresh network (and to a replay of its recorded trace).

Every cell's seed derives from a stable hash of its grid coordinates
(:func:`~repro.workload.spec.stable_seed`), never from draw order, so a
cell's random streams are identical no matter which order — or which worker
process — runs it.  ``run_matrix(..., workers=N)`` hands the grid to the
parallel execution engine (:mod:`repro.exec`), whose merged report is
byte-identical to the sequential run (:meth:`MatrixReport.digest`).

The per-cell results aggregate into a :class:`MatrixReport`: hop
percentiles, cache hit rate, plan-cache hit rate and availability under
faults, sliceable by strategy, topology or fault regime, with JSON
persistence for benchmark trajectories.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.exceptions import StrategyError
from ..network.delivery import plan_hit_rates
from ..network.simulator import Network
from ..obs import export as _obs_export
from ..obs.profile import CELL_RUN, TOPOLOGY_BUILD, PhaseProfile, phase, profiling
from ..obs.registry import CounterMap
from ..obs.spans import SpanRecorder
from ..simtime.model import TimeModelSpec
from .driver import WorkloadDriver, WorkloadResult
from .spec import (
    ArrivalSpec,
    ChurnSpec,
    FaultRegimeSpec,
    PopularitySpec,
    ScenarioSpec,
    build_strategy,
    build_topology,
    stable_seed,
)
from .trace import canonical_digest


def _regime_labels(regimes: Sequence[FaultRegimeSpec]) -> List[str]:
    """One unique label per regime axis entry (duplicates get an index)."""
    labels = [regime.label for regime in regimes]
    seen: Dict[str, int] = {}
    unique = []
    for label in labels:
        count = seen.get(label, 0)
        seen[label] = count + 1
        unique.append(label if labels.count(label) == 1 else f"{label}#{count}")
    return unique


@dataclass(frozen=True)
class MatrixCell:
    """One expanded grid cell: the concrete spec plus its grid coordinates.

    ``regime`` is the axis label (uniquified when the same regime kind
    appears twice on the axis), so reports can group duplicate kinds
    separately.  ``key`` is the coordinate string (without the matrix name)
    the cell's seed was derived from.
    """

    spec: ScenarioSpec
    topology: str
    strategy: str
    regime: str
    key: str = ""


@dataclass(frozen=True)
class MatrixSpec:
    """A declarative scenario grid.

    ``base`` is the template every cell inherits (operations, population,
    seed, delivery mode...); the axis tuples override one dimension each.
    Leaving ``arrivals``/``popularities``/``churns`` empty keeps the base's
    single model on that axis.
    """

    name: str = "matrix"
    topologies: Tuple[str, ...] = ("complete:16",)
    strategies: Tuple[str, ...] = ("checkerboard",)
    fault_regimes: Tuple[FaultRegimeSpec, ...] = (FaultRegimeSpec(),)
    base: ScenarioSpec = field(default_factory=ScenarioSpec)
    arrivals: Tuple[ArrivalSpec, ...] = ()
    popularities: Tuple[PopularitySpec, ...] = ()
    churns: Tuple[ChurnSpec, ...] = ()
    #: Time-model axis (``repro.simtime``): each entry may be a
    #: :class:`~repro.simtime.model.TimeModelSpec` or ``None`` (untimed),
    #: so one grid can compare hop counts against priced latency.  Empty
    #: keeps the base's single model, exactly like the other model axes.
    time_models: Tuple[Optional[TimeModelSpec], ...] = ()

    def __post_init__(self) -> None:
        if not self.topologies or not self.strategies or not self.fault_regimes:
            raise ValueError(
                "topologies, strategies and fault_regimes must be non-empty"
            )

    @property
    def cell_count(self) -> int:
        """Grid size before compatibility filtering."""
        return (
            len(self.topologies) * len(self.strategies)
            * len(self.fault_regimes)
            * max(1, len(self.arrivals)) * max(1, len(self.popularities))
            * max(1, len(self.churns)) * max(1, len(self.time_models))
        )

    def expand(self) -> Tuple[List[MatrixCell], List[Dict[str, str]]]:
        """All runnable cells, plus records of the skipped ones.

        A cell is skipped when its strategy cannot be instantiated on its
        topology (e.g. ``manhattan`` routing on a hypercube); the skip
        record carries the cell coordinates and the reason.
        """
        arrivals = self.arrivals or (self.base.arrival,)
        popularities = self.popularities or (self.base.popularity,)
        churns = self.churns or (self.base.churn,)
        time_models = self.time_models or (self.base.time_model,)
        regime_labels = _regime_labels(self.fault_regimes)
        cells: List[MatrixCell] = []
        skipped: List[Dict[str, str]] = []
        for topology_name in self.topologies:
            topology = build_topology(topology_name)
            for strategy_name in self.strategies:
                try:
                    build_strategy(strategy_name, topology)
                except StrategyError as error:
                    skipped.append({
                        "topology": topology_name,
                        "strategy": strategy_name,
                        "reason": str(error),
                    })
                    continue
                for regime, regime_label in zip(self.fault_regimes, regime_labels):
                    for a, arrival in enumerate(arrivals):
                        for p, popularity in enumerate(popularities):
                            for c, churn in enumerate(churns):
                                for t, time_model in enumerate(time_models):
                                    parts = [
                                        self.name, topology_name,
                                        strategy_name, regime_label,
                                    ]
                                    # Model axes only appear in the name when
                                    # they actually vary, so the common 3-axis
                                    # grid keeps short cell names.
                                    if len(arrivals) > 1:
                                        parts.append(f"a{a}")
                                    if len(popularities) > 1:
                                        parts.append(f"p{p}")
                                    if len(churns) > 1:
                                        parts.append(f"c{c}")
                                    if len(time_models) > 1:
                                        parts.append(f"t{t}")
                                    # The cell key is the coordinate string
                                    # minus the matrix name, so renaming a
                                    # grid keeps every cell's seed (and
                                    # therefore results).
                                    key = "/".join(parts[1:])
                                    spec = replace(
                                        self.base,
                                        name="/".join(parts),
                                        topology=topology_name,
                                        strategy=strategy_name,
                                        faults=regime,
                                        arrival=arrival,
                                        popularity=popularity,
                                        churn=churn,
                                        time_model=time_model,
                                        seed=stable_seed(self.base.seed, key),
                                    )
                                    cells.append(MatrixCell(
                                        spec=spec,
                                        topology=topology_name,
                                        strategy=strategy_name,
                                        regime=regime_label,
                                        key=key,
                                    ))
        return cells, skipped

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe, full-fidelity description of the grid.

        Round-trips through :meth:`from_dict`, so a grid can be written as a
        JSON file and handed to ``python -m repro matrix``; the derived
        ``regime_labels`` and ``cell_count`` ride along for report readers
        and are ignored on the way back in.
        """
        data = {
            "name": self.name,
            "topologies": list(self.topologies),
            "strategies": list(self.strategies),
            "fault_regimes": [asdict(regime) for regime in self.fault_regimes],
            "regime_labels": _regime_labels(self.fault_regimes),
            "base": self.base.to_dict(),
            "arrivals": [asdict(arrival) for arrival in self.arrivals],
            "popularities": [asdict(pop) for pop in self.popularities],
            "churns": [asdict(churn) for churn in self.churns],
            "cell_count": self.cell_count,
        }
        # Like ScenarioSpec's ``time_model``: the axis appears only when
        # used, so untimed grid descriptions (and their report digests)
        # are byte-identical to pre-simtime output.
        if self.time_models:
            data["time_models"] = [
                model.to_dict() if model is not None else None
                for model in self.time_models
            ]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MatrixSpec":
        """Rebuild a grid from :meth:`to_dict` output (or a hand-written
        JSON spec; every field defaults).

        Unknown keys are rejected rather than defaulted over — a typoed
        axis name (``"topologys"``) must fail loudly, not silently run the
        default grid.  The derived ``regime_labels``/``cell_count`` that
        :meth:`to_dict` emits are tolerated and ignored.
        """
        known = {
            "name", "topologies", "strategies", "fault_regimes", "base",
            "arrivals", "popularities", "churns", "time_models",
            "regime_labels", "cell_count",  # derived, to_dict round-trip
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(
                f"unknown MatrixSpec key(s) {unknown}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(
            name=str(data.get("name", "matrix")),
            topologies=tuple(data.get("topologies", ("complete:16",))),
            strategies=tuple(data.get("strategies", ("checkerboard",))),
            fault_regimes=tuple(
                FaultRegimeSpec(**regime)
                for regime in data.get("fault_regimes", ({},))
            ),
            base=ScenarioSpec.from_dict(dict(data.get("base", {}))),
            arrivals=tuple(
                ArrivalSpec(**arrival) for arrival in data.get("arrivals", ())
            ),
            popularities=tuple(
                PopularitySpec(**pop) for pop in data.get("popularities", ())
            ),
            churns=tuple(
                ChurnSpec(**churn) for churn in data.get("churns", ())
            ),
            time_models=tuple(
                TimeModelSpec.from_dict(dict(model)) if model else None
                for model in data.get("time_models", ())
            ),
        )


@dataclass(frozen=True)
class CellResult:
    """One matrix cell's deterministic outcome plus run metadata."""

    topology: str
    strategy: str
    regime: str
    summary: Dict[str, object]
    plan_cache: Dict[str, int]
    wall_seconds: float

    @property
    def availability(self) -> float:
        """Fraction of the cell's requests that were served."""
        return float(self.summary.get("success_rate", 0.0))

    def to_dict(self) -> Dict[str, object]:
        """JSON-safe form (wall seconds rounded; they are informational)."""
        return {
            "topology": self.topology,
            "strategy": self.strategy,
            "regime": self.regime,
            "summary": self.summary,
            "plan_cache": dict(self.plan_cache),
            "wall_seconds": round(self.wall_seconds, 4),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "CellResult":
        """Rebuild a cell from :meth:`to_dict` output."""
        return cls(
            topology=str(data["topology"]),
            strategy=str(data["strategy"]),
            regime=str(data["regime"]),
            summary=dict(data["summary"]),
            plan_cache=dict(data.get("plan_cache", {})),
            wall_seconds=float(data.get("wall_seconds", 0.0)),
        )


class MatrixReport:
    """Comparable aggregation of every cell in one matrix run."""

    def __init__(
        self,
        grid: Dict[str, object],
        cells: Sequence[CellResult],
        skipped: Sequence[Dict[str, str]] = (),
        profile: Optional[Dict[str, object]] = None,
        cache: Optional[Dict[str, int]] = None,
    ) -> None:
        self._grid = dict(grid)
        self._cells = list(cells)
        self._skipped = [dict(entry) for entry in skipped]
        self._profile = dict(profile) if profile else None
        self._cache = dict(cache) if cache is not None else None

    @property
    def profile(self) -> Optional[Dict[str, object]]:
        """Per-worker wall-clock phase profiles, when profiling was on.

        Wall-clock data is nondeterministic by nature, so this section is
        excluded from :meth:`canonical_dict` and therefore from
        :meth:`digest` — profiling a run never changes its identity.
        """
        return dict(self._profile) if self._profile else None

    def attach_profile(self, profile: Dict[str, object]) -> None:
        """Install the run's wall-clock profile section."""
        self._profile = dict(profile)

    @property
    def cache_stats(self) -> Optional[Dict[str, int]]:
        """Cell-cache / warm-pool counters, when either was enabled.

        Hits, misses, stale/corrupt entries, stores, warm-up replays and
        pool network reuses describe *how this run was computed*, not what
        it computed — a fully cached run and a cold run of the same grid
        are the same result.  The section is therefore excluded from
        :meth:`canonical_dict`, exactly like ``profile``.
        """
        return dict(self._cache) if self._cache is not None else None

    def attach_cache_stats(self, stats: Dict[str, int]) -> None:
        """Install the run's cache/pool counter section."""
        self._cache = {key: int(stats[key]) for key in sorted(stats)}

    @property
    def grid(self) -> Dict[str, object]:
        """The grid description this report was produced from."""
        return dict(self._grid)

    @property
    def cells(self) -> List[CellResult]:
        """Every executed cell."""
        return list(self._cells)

    @property
    def skipped(self) -> List[Dict[str, str]]:
        """Cells that could not run (incompatible strategy/topology)."""
        return [dict(entry) for entry in self._skipped]

    def __len__(self) -> int:
        return len(self._cells)

    # -- slicing ---------------------------------------------------------------

    def _aggregate(self, key: str) -> Dict[str, Dict[str, object]]:
        """Aggregate cells grouped by one coordinate (strategy/topology/
        regime)."""
        groups: Dict[str, List[CellResult]] = {}
        for cell in self._cells:
            groups.setdefault(getattr(cell, key), []).append(cell)
        aggregated = {}
        for label in sorted(groups):
            members = groups[label]
            requests = sum(c.summary["requests"] for c in members)
            successes = sum(c.summary["successes"] for c in members)
            cache_hits = sum(c.summary["cache_hits"] for c in members)
            plan_events = CounterMap()
            for cell in members:
                plan_events.merge(cell.plan_cache)
            aggregated[label] = {
                "cells": len(members),
                "requests": requests,
                "availability": round(successes / requests, 4) if requests else 0.0,
                "worst_cell_availability": round(
                    min(c.availability for c in members), 4
                ),
                "cache_hit_rate": round(cache_hits / requests, 4) if requests else 0.0,
                "p95_locate_hops": max(
                    c.summary["locate_hops"]["p95"] for c in members
                ),
                "p99_locate_hops": max(
                    c.summary["locate_hops"]["p99"] for c in members
                ),
                "plan_hit_rate": round(plan_hit_rates(plan_events)["plan"], 4),
            }
            # Latency aggregates exist only when the whole group was timed;
            # untimed (or mixed) groups keep the pre-simtime key set.
            if all("latency" in c.summary for c in members):
                aggregated[label]["p99_latency_us"] = max(
                    c.summary["latency"]["p99"] for c in members
                )
                aggregated[label]["p999_latency_us"] = max(
                    c.summary["latency"]["p999"] for c in members
                )
            # SLO aggregates: only when every member carried an objective
            # (the key set stays pinned for slo-less grids).
            if all("slo" in c.summary for c in members):
                aggregated[label]["slo_breached_windows"] = sum(
                    c.summary["slo"]["breached_windows"] for c in members
                )
                aggregated[label]["worst_latency_burn_rate"] = max(
                    c.summary["slo"]["latency_burn_rate"] for c in members
                )
                breaches = [
                    c.summary["slo"]["first_breach_us"] for c in members
                    if c.summary["slo"]["first_breach_us"] is not None
                ]
                aggregated[label]["first_breach_us"] = (
                    min(breaches) if breaches else None
                )
        return aggregated

    def by_strategy(self) -> Dict[str, Dict[str, object]]:
        """Aggregates per strategy — the paper's cross-strategy comparison."""
        return self._aggregate("strategy")

    def by_topology(self) -> Dict[str, Dict[str, object]]:
        """Aggregates per topology."""
        return self._aggregate("topology")

    def by_regime(self) -> Dict[str, Dict[str, object]]:
        """Aggregates per fault regime — robustness under each fault shape."""
        return self._aggregate("regime")

    def availability_floor(self) -> float:
        """The worst availability any cell recorded (1.0 for empty reports)."""
        if not self._cells:
            return 1.0
        return min(cell.availability for cell in self._cells)

    def plan_cache_events(self) -> Dict[str, int]:
        """Planner cache events summed over every cell."""
        totals = CounterMap()
        for cell in self._cells:
            totals.merge(cell.plan_cache)
        return totals

    def table(self) -> List[Dict[str, object]]:
        """Per-cell rows for printed comparison tables."""
        rows = []
        for cell in self._cells:
            rows.append({
                "topology": cell.topology,
                "strategy": cell.strategy,
                "regime": cell.regime,
                "ok%": round(100 * cell.availability, 1),
                "hit%": round(100 * float(cell.summary["cache_hit_rate"]), 1),
                "p50 hops": cell.summary["locate_hops"]["p50"],
                "p95 hops": cell.summary["locate_hops"]["p95"],
                "stale": cell.summary["stale_retries"],
            })
        return rows

    # -- persistence -----------------------------------------------------------

    def to_dict(self) -> Dict[str, object]:
        """The whole report as one JSON-safe dictionary."""
        data = {
            "grid": self._grid,
            "cells": [cell.to_dict() for cell in self._cells],
            "skipped": self.skipped,
            "by_strategy": self.by_strategy(),
            "by_regime": self.by_regime(),
            "availability_floor": round(self.availability_floor(), 4),
        }
        if self._profile is not None:
            data["profile"] = dict(self._profile)
        if self._cache is not None:
            data["cache"] = dict(self._cache)
        return data

    def canonical_dict(self) -> Dict[str, object]:
        """:meth:`to_dict` with every nondeterministic field neutralized.

        Per-cell wall seconds, the wall-clock ``profile`` section and the
        how-was-this-computed ``cache`` section are the only
        non-result content a report carries; zeroing the one and dropping
        the others leaves exactly the bytes that must match between a
        sequential run and any sharded parallel run of the same grid —
        with or without observability or caching enabled.
        """
        data = self.to_dict()
        data.pop("profile", None)
        data.pop("cache", None)
        for cell in data["cells"]:
            cell["wall_seconds"] = 0.0
        return data

    def digest(self) -> str:
        """SHA-256 over the canonical JSON — the parallel-merge oracle.

        Equal digests mean byte-identical reports (modulo wall clock): same
        grid, same cells in the same order, same metrics, same plan-cache
        counters.  The E18 benchmark and CI pin sequential == parallel with
        this.
        """
        return canonical_digest(self.canonical_dict())

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MatrixReport":
        """Rebuild a report from :meth:`to_dict` output (aggregates are
        recomputed from the cells, not trusted from the file)."""
        return cls(
            grid=dict(data.get("grid", {})),
            cells=[CellResult.from_dict(cell) for cell in data.get("cells", [])],
            skipped=data.get("skipped", []),
            profile=data.get("profile"),
            cache=data.get("cache"),
        )

    def to_path(self, path) -> None:
        """Persist the report as pretty-printed JSON."""
        with open(path, "w", encoding="utf-8") as fp:
            json.dump(self.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")

    @classmethod
    def from_path(cls, path) -> "MatrixReport":
        """Load a report written by :meth:`to_path`."""
        with open(path, "r", encoding="utf-8") as fp:
            return cls.from_dict(json.load(fp))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"MatrixReport(cells={len(self._cells)}, "
            f"availability_floor={self.availability_floor():.3f})"
        )


def run_cell(
    cell: MatrixCell,
    network: Optional[Network] = None,
    tracer: Optional[SpanRecorder] = None,
) -> Tuple[CellResult, WorkloadResult]:
    """Execute one expanded cell (the sequential loop and every parallel
    worker both land here, so the two paths cannot drift).

    ``tracer`` collects the driver's span tree for this cell; spans are
    logical-clock stamped, so tracing never changes the cell's results.
    """
    result = WorkloadDriver(cell.spec, network=network).run(tracer=tracer)
    cell_result = CellResult(
        topology=cell.topology,
        strategy=cell.strategy,
        regime=cell.regime,
        summary=result.summary(),
        plan_cache=result.plan_cache,
        wall_seconds=result.wall_seconds,
    )
    return cell_result, result


def write_cell_trace(trace_dir, position: int, result: WorkloadResult) -> Path:
    """Persist one cell's trace as ``cell-NNNN.jsonl`` under ``trace_dir``.

    ``position`` is the cell's grid expansion index, so sequential and
    sharded runs of the same grid write identical file sets; any file
    replays on its own through ``python -m repro replay``.
    """
    directory = Path(trace_dir)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / f"cell-{position:04d}.jsonl"
    result.trace.to_path(path)
    return path


def shared_network_for(
    networks: Dict[str, Network], spec: ScenarioSpec
) -> Network:
    """The per-topology shared network for ``spec``, built on first use.

    The driver resets it before every run, so sharing never changes a
    cell's metrics — it only amortizes the O(n²) routing construction and
    keeps fault-free delivery-plan caches warm across same-topology cells.
    """
    network = networks.get(spec.topology)
    if network is None:
        with phase(TOPOLOGY_BUILD):
            network = build_topology(spec.topology).build_network(
                delivery_mode=spec.delivery_mode
            )
        networks[spec.topology] = network
    return network


def run_matrix(
    matrix: MatrixSpec,
    share_networks: bool = True,
    keep_results: bool = False,
    workers: Optional[int] = None,
    progress: Optional[Callable[[int, int], None]] = None,
    trace_dir=None,
    obs_dir=None,
    profile: bool = False,
    cache_dir=None,
    pool=None,
) -> Tuple[MatrixReport, List[WorkloadResult]]:
    """Execute every cell of ``matrix`` and aggregate the results.

    With ``share_networks`` (the default) all cells on the same topology
    run over one reset-between-runs :class:`~repro.network.Network`.  Full
    :class:`~repro.workload.driver.WorkloadResult` objects (with traces) are
    only retained when ``keep_results`` is set — a large grid's traces can
    dwarf the report.

    ``workers`` > 1 dispatches the grid through the parallel execution
    engine (:mod:`repro.exec`): cells shard across worker processes with
    topology affinity and the merged report is byte-identical (see
    :meth:`MatrixReport.digest`) to this function's sequential output;
    ``workers=0`` means one worker per CPU.  ``progress`` is called as
    ``progress(done_cells, total_cells)`` while the grid runs, and
    ``trace_dir`` spools every cell's trace as a replayable JSONL file.

    ``obs_dir`` enables the observability export (per-cell span trees,
    shard spans, a per-cell metrics JSONL — see :mod:`repro.obs.export`),
    and ``profile`` turns on wall-clock phase timing surfaced in the
    report's ``profile`` section.  Both are digest-neutral: spans carry
    logical clocks only, and the profile section is excluded from
    :meth:`MatrixReport.canonical_dict`.

    ``cache_dir`` enables the content-addressed cell cache
    (:mod:`repro.exec.cache`): unchanged cells are served from disk
    instead of executed (runs that must produce per-cell artifacts —
    kept results, traces, the obs export — still execute everything but
    populate the cache for later plain runs).  Sequential and parallel
    runs share entries, and the report digest is byte-identical with the
    cache cold, warm or absent; the counters land in the digest-excluded
    ``cache`` section.  ``pool`` is a live
    :class:`~repro.exec.pool.WarmPool` and implies parallel dispatch.
    """
    if pool is not None or (workers is not None and workers != 1):
        from ..exec.runner import run_matrix_parallel

        return run_matrix_parallel(
            matrix,
            workers=workers,
            share_networks=share_networks,
            keep_results=keep_results,
            progress=progress,
            trace_dir=trace_dir,
            obs_dir=obs_dir,
            profile=profile,
            cache_dir=cache_dir,
            pool=pool,
        )
    cells, skipped = matrix.expand()
    run_profile = PhaseProfile("sequential") if profile else None
    obs_path = _obs_export.export_dir(obs_dir) if obs_dir is not None else None
    shard_tracer = SpanRecorder() if obs_path is not None else None
    networks: Dict[str, Network] = {}
    cell_results: List[CellResult] = []
    results: List[WorkloadResult] = []
    cache = runner = None
    if cache_dir is not None:
        from ..exec.cache import CellCache, IncrementalRunner

        cache = CellCache(cache_dir)
        runner = IncrementalRunner(
            cache,
            share_networks=share_networks,
            reads=not (
                keep_results or trace_dir is not None or obs_path is not None
            ),
        )
    metrics_fp = None
    try:
        if obs_path is not None:
            metrics_fp = open(
                _obs_export.metrics_path(obs_path), "w", encoding="utf-8"
            )
        with profiling(run_profile):
            shard_span = None
            if shard_tracer is not None:
                shard_span = shard_tracer.begin("shard", shard=0, cells=len(cells))
            for position, cell in enumerate(cells):
                if runner is not None:
                    cached = runner.lookup(cell)
                    if cached is not None:
                        cell_results.append(cached)
                        if progress is not None:
                            progress(position + 1, len(cells))
                        continue
                network: Optional[Network] = None
                if share_networks:
                    network = shared_network_for(networks, cell.spec)
                    if runner is not None:
                        runner.warmup(cell, network)
                cell_tracer = SpanRecorder() if obs_path is not None else None
                with phase(CELL_RUN):
                    cell_result, result = run_cell(
                        cell, network=network, tracer=cell_tracer
                    )
                if runner is not None:
                    runner.record(cell_result)
                cell_results.append(cell_result)
                if obs_path is not None:
                    cell_tracer.to_path(
                        _obs_export.cell_span_path(obs_path, position)
                    )
                    metrics_fp.write(_obs_export.dump_metrics_line(
                        position,
                        {
                            "name": cell.spec.name,
                            "topology": cell.topology,
                            "strategy": cell.strategy,
                            "regime": cell.regime,
                        },
                        result.metrics.registry,
                    ))
                    if result.exemplars:
                        _obs_export.write_timelines(
                            _obs_export.timeline_path(obs_path, position),
                            result.exemplars,
                        )
                    shard_tracer.set_clock(float(position))
                    shard_tracer.event(
                        "cell-run", position=position, cell=cell.spec.name
                    )
                if trace_dir is not None:
                    write_cell_trace(trace_dir, position, result)
                if keep_results:
                    results.append(result)
                if progress is not None:
                    progress(position + 1, len(cells))
            if shard_tracer is not None:
                shard_tracer.end(shard_span, cells=len(cells))
                shard_tracer.to_path(_obs_export.shard_span_path(obs_path, 0))
    finally:
        if metrics_fp is not None:
            metrics_fp.close()
    report = MatrixReport(matrix.to_dict(), cell_results, skipped)
    if cache is not None:
        report.attach_cache_stats(cache.stats())
        if obs_path is not None:
            _obs_export.write_cache_stats(
                _obs_export.cache_stats_path(obs_path), cache.stats()
            )
    if run_profile is not None:
        if obs_path is not None:
            _obs_export.write_profiles(
                _obs_export.profile_path(obs_path), [run_profile]
            )
        report.attach_profile(_obs_export.profiles_dict([run_profile]))
    return report, results
