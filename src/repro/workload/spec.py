"""Declarative workload scenario specifications.

A :class:`ScenarioSpec` describes one traffic experiment completely — the
topology, the match-making strategy, the process population, the arrival
process, the popularity model and the churn model — as plain data.  Specs
round-trip through ``to_dict``/``from_dict`` so a recorded trace can embed
the scenario it was captured under and a benchmark can persist exactly what
it ran.

The spec layer also owns the name-to-object resolvers ``build_topology`` and
``build_strategy``, so scenarios can be written as strings (``"manhattan:8"``
+ ``"checkerboard"``) without importing half the package.
"""

from __future__ import annotations

import hashlib
import random
from dataclasses import asdict, dataclass, field, replace
from typing import Dict, Hashable, Iterable, List, Optional

from ..core.exceptions import StrategyError
from ..core.strategy import MatchMakingStrategy
from ..network.faults import (
    FaultTimeline,
    correlated_failures,
    crash_recover_waves,
    link_flaps,
    region_partition,
)
from ..network.graph import Graph
from ..simtime.model import TimeModelSpec
from ..strategies import (
    CubeConnectedCyclesStrategy,
    HierarchicalGatewayStrategy,
    HypercubeStrategy,
    ManhattanStrategy,
    ProjectivePlaneStrategy,
    SubgraphDecompositionStrategy,
    TreePathStrategy,
    default_registry,
)
from ..topologies import (
    CompleteTopology,
    CubeConnectedCyclesTopology,
    HierarchicalTopology,
    HypercubeTopology,
    ManhattanTopology,
    ProjectivePlaneTopology,
    RingTopology,
    StarTopology,
    Topology,
    TreeTopology,
    decompose,
)

#: Arrival process kinds.
ARRIVAL_KINDS = ("closed", "poisson", "burst")
#: Popularity model kinds.
POPULARITY_KINDS = ("uniform", "zipf", "hotspot")
#: Churn model kinds.
CHURN_KINDS = ("none", "migration", "failover", "storm", "mixed")
#: Fault-regime kinds.
FAULT_REGIME_KINDS = ("none", "waves", "flaps", "partition", "correlated")


@dataclass(frozen=True)
class ArrivalSpec:
    """How request operations arrive over simulated time.

    ``closed``
        a closed loop of clients: each client issues its next request as soon
        as the previous one completed, after ``think_time`` seconds;
    ``poisson``
        an open-loop Poisson stream at ``rate`` requests/second, each from a
        uniformly random client;
    ``burst``
        bursts of ``burst_size`` back-to-back requests separated by
        ``burst_gap`` idle seconds.
    """

    kind: str = "closed"
    rate: float = 200.0
    think_time: float = 0.0
    burst_size: int = 50
    burst_gap: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival kind {self.kind!r}; expected one of {ARRIVAL_KINDS}"
            )
        if self.rate <= 0:
            raise ValueError("arrival rate must be positive")
        if self.burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if self.think_time < 0 or self.burst_gap < 0:
            raise ValueError("times must be non-negative")


@dataclass(frozen=True)
class PopularitySpec:
    """How clients choose which service (port) each request targets.

    ``uniform``
        every port equally likely;
    ``zipf``
        port popularity follows a Zipf law with exponent ``zipf_exponent``
        (rank 1 hottest);
    ``hotspot``
        one "hot" port receives ``hotspot_fraction`` of the traffic, and the
        hot port moves to the next one every ``hotspot_interval`` simulated
        seconds (a moving hotspot).
    """

    kind: str = "uniform"
    zipf_exponent: float = 1.1
    hotspot_fraction: float = 0.8
    hotspot_interval: float = 5.0

    def __post_init__(self) -> None:
        if self.kind not in POPULARITY_KINDS:
            raise ValueError(
                f"unknown popularity kind {self.kind!r}; "
                f"expected one of {POPULARITY_KINDS}"
            )
        if self.zipf_exponent <= 0:
            raise ValueError("zipf_exponent must be positive")
        if not 0.0 < self.hotspot_fraction <= 1.0:
            raise ValueError("hotspot_fraction must be in (0, 1]")
        if self.hotspot_interval <= 0:
            raise ValueError("hotspot_interval must be positive")


@dataclass(frozen=True)
class ChurnSpec:
    """How the server population and rendezvous state shift under load.

    Events occur as a Poisson process at ``rate`` events per simulated
    second.  ``migration`` moves a random server to a random node;
    ``failover`` crashes a server-hosting node (killing its servers, which
    are respawned elsewhere) and recovers it ``downtime`` seconds later;
    ``storm`` wipes the posting caches of a ``storm_fraction`` sample of
    nodes (servers then re-post); ``mixed`` draws uniformly among the three.
    """

    kind: str = "none"
    rate: float = 0.0
    downtime: float = 1.0
    storm_fraction: float = 0.25

    def __post_init__(self) -> None:
        if self.kind not in CHURN_KINDS:
            raise ValueError(
                f"unknown churn kind {self.kind!r}; expected one of {CHURN_KINDS}"
            )
        if self.kind != "none" and self.rate <= 0:
            raise ValueError("churn rate must be positive for active churn")
        if self.downtime <= 0:
            raise ValueError("downtime must be positive")
        if not 0.0 < self.storm_fraction <= 1.0:
            raise ValueError("storm_fraction must be in (0, 1]")


@dataclass(frozen=True)
class FaultRegimeSpec:
    """A scheduled fault timeline, declaratively.

    Unlike churn (which reshuffles the *server population*), a fault regime
    attacks the *substrate* on a schedule, advancing the network's fault-plan
    revision mid-run:

    ``none``
        a fault-free run;
    ``waves``
        ``events`` crash waves of ``size`` random nodes each, every node
        recovering ``downtime`` seconds after its wave struck;
    ``flaps``
        ``events`` link flaps — a random link fails and heals ``downtime``
        later (the same link may flap repeatedly);
    ``partition``
        ``events`` region partitions: all links around a BFS region of
        ``size`` nodes are cut, then healed ``downtime`` later;
    ``correlated``
        ``events`` correlated failures: an epicenter plus up to ``size - 1``
        neighbours crash together and recover together.

    The first event fires at ``start`` seconds of scenario time; subsequent
    events are ``period`` apart.
    """

    kind: str = "none"
    events: int = 2
    size: int = 2
    start: float = 0.5
    period: float = 1.0
    downtime: float = 0.5

    def __post_init__(self) -> None:
        if self.kind not in FAULT_REGIME_KINDS:
            raise ValueError(
                f"unknown fault regime kind {self.kind!r}; "
                f"expected one of {FAULT_REGIME_KINDS}"
            )
        if self.events < 1 or self.size < 1:
            raise ValueError("events and size must be at least 1")
        if self.start < 0 or self.period <= 0 or self.downtime <= 0:
            raise ValueError(
                "start must be non-negative; period and downtime positive"
            )

    @property
    def label(self) -> str:
        """A compact identity string for matrix-cell names and reports.

        ``size`` only appears for kinds that use it (flaps always hit one
        link at a time).
        """
        if self.kind == "none":
            return "none"
        if self.kind == "flaps":
            return f"flaps(e{self.events})"
        return f"{self.kind}(e{self.events},s{self.size})"


@dataclass(frozen=True)
class SloSpec:
    """A declarative service-level objective for a timed scenario.

    ``latency_objective`` is the per-request latency bound in virtual
    seconds; ``latency_target`` the fraction of requests that must meet it
    (e.g. 0.99 — "99% of requests under 10ms").  ``availability_target``
    is the fraction of requests that must succeed at all.  ``window`` is
    the telemetry window width in virtual seconds: the run's
    :class:`~repro.obs.timeline.Timeline` buckets by it, and burn rates
    are evaluated per window on the virtual clock, so a 50ms burst trips
    the monitor even when the whole-run average would hide it.

    SLOs only bind on *timed* runs (the virtual clock is what the
    objective is measured against); an untimed run carries the spec in its
    identity but records no windows and no burn rates.
    """

    latency_objective: float = 0.01
    latency_target: float = 0.99
    availability_target: float = 0.999
    window: float = 0.5

    def __post_init__(self) -> None:
        if self.latency_objective <= 0:
            raise ValueError("latency_objective must be positive")
        if not 0.0 < self.latency_target < 1.0:
            raise ValueError("latency_target must be in (0, 1)")
        if not 0.0 < self.availability_target < 1.0:
            raise ValueError("availability_target must be in (0, 1)")
        if self.window <= 0:
            raise ValueError("window must be positive")

    @property
    def label(self) -> str:
        """A compact identity string for reports."""
        return (
            f"p{self.latency_target:.4g}<{self.latency_objective:.4g}s"
            f"@{self.window:.4g}s"
        )


@dataclass(frozen=True)
class ScenarioSpec:
    """One complete, reproducible workload scenario."""

    name: str = "scenario"
    topology: str = "complete:64"
    strategy: str = "checkerboard"
    operations: int = 10_000
    clients: int = 16
    servers: int = 4
    ports: int = 4
    delivery_mode: str = "ideal"
    seed: int = 0
    max_retries: int = 3
    #: When False every request runs a fresh locate (the client's private
    #: address cache is bypassed) — useful for pure locate-throughput runs.
    cache_addresses: bool = True
    arrival: ArrivalSpec = field(default_factory=ArrivalSpec)
    popularity: PopularitySpec = field(default_factory=PopularitySpec)
    churn: ChurnSpec = field(default_factory=ChurnSpec)
    faults: FaultRegimeSpec = field(default_factory=FaultRegimeSpec)
    #: Optional discrete-event time model (``repro.simtime``).  ``None``
    #: keeps the run untimed and its serialized form *key-free* — see
    #: :meth:`to_dict` — so every pre-simtime digest is preserved.
    time_model: Optional[TimeModelSpec] = None
    #: Optional SLO evaluated per virtual-time window on timed runs.
    #: ``None`` omits the key from :meth:`to_dict` (same digest contract
    #: as ``time_model``), so every pre-SLO scenario identity is preserved.
    slo: Optional[SloSpec] = None

    def __post_init__(self) -> None:
        if self.operations < 1:
            raise ValueError("operations must be at least 1")
        if self.clients < 1 or self.servers < 1 or self.ports < 1:
            raise ValueError("clients, servers and ports must be at least 1")
        if self.servers < self.ports:
            raise ValueError(
                "need at least one server per port "
                f"(servers={self.servers}, ports={self.ports})"
            )

    def with_strategy(self, strategy: str, name: str = "") -> "ScenarioSpec":
        """A copy of this spec running a different strategy."""
        return replace(self, strategy=strategy, name=name or f"{self.name}:{strategy}")

    def to_dict(self) -> Dict[str, object]:
        """A JSON-safe dictionary describing this scenario.

        An untimed spec omits the ``time_model`` key entirely (rather than
        emitting ``null``): trace headers, cache keys and digests of every
        scenario recorded before — or simply without — the time model stay
        byte-identical.
        """
        data = asdict(self)
        if self.time_model is None:
            del data["time_model"]
        else:
            data["time_model"] = self.time_model.to_dict()
        if self.slo is None:
            del data["slo"]
        return data

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "ScenarioSpec":
        """Rebuild a spec from :meth:`to_dict` output."""
        payload = dict(data)
        payload["arrival"] = ArrivalSpec(**payload.get("arrival", {}))
        payload["popularity"] = PopularitySpec(**payload.get("popularity", {}))
        payload["churn"] = ChurnSpec(**payload.get("churn", {}))
        # Traces recorded before fault regimes existed have no "faults" key.
        payload["faults"] = FaultRegimeSpec(**payload.get("faults", {}))
        time_model = payload.get("time_model")
        if time_model and not isinstance(time_model, TimeModelSpec):
            time_model = TimeModelSpec.from_dict(time_model)
        payload["time_model"] = time_model or None
        slo = payload.get("slo")
        if slo and not isinstance(slo, SloSpec):
            slo = SloSpec(**slo)
        payload["slo"] = slo or None
        return cls(**payload)


# -- seed derivation ---------------------------------------------------------------

def stable_seed(master_seed: int, key: str) -> int:
    """A deterministic, process-independent seed for ``key``.

    SHA-256 over ``master_seed/key``, truncated to 63 bits — stable across
    interpreter invocations, hash randomization and platforms, unlike
    ``hash()``.  The matrix engine seeds every cell from its grid
    coordinates this way, so neither cell execution order nor the worker
    count that ran a cell can ever influence its random streams.
    """
    digest = hashlib.sha256(f"{master_seed}/{key}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


# -- name resolution ---------------------------------------------------------------

def _int_args(spec: str, argument: str, expected: int) -> List[int]:
    parts = argument.split("x") if argument else []
    if len(parts) != expected:
        raise ValueError(
            f"topology spec {spec!r} needs {expected} integer argument(s)"
        )
    try:
        return [int(part) for part in parts]
    except ValueError:
        raise ValueError(f"topology spec {spec!r} has non-integer arguments") from None


def build_topology(spec: str) -> Topology:
    """Instantiate a topology from a ``"family:args"`` string.

    Supported: ``complete:n``, ``ring:n``, ``star:n``, ``manhattan:side``,
    ``hypercube:d``, ``ccc:d``, ``projective:order``, ``hierarchy:bxl``
    (branching x levels) and ``tree:bxd`` (branching x depth).
    """
    family, _, argument = spec.partition(":")
    family = family.strip().lower()
    if family == "complete":
        return CompleteTopology(_int_args(spec, argument, 1)[0])
    if family == "ring":
        return RingTopology(_int_args(spec, argument, 1)[0])
    if family == "star":
        return StarTopology(_int_args(spec, argument, 1)[0])
    if family == "manhattan":
        return ManhattanTopology.square(_int_args(spec, argument, 1)[0])
    if family == "hypercube":
        return HypercubeTopology(_int_args(spec, argument, 1)[0])
    if family == "ccc":
        return CubeConnectedCyclesTopology(_int_args(spec, argument, 1)[0])
    if family == "projective":
        return ProjectivePlaneTopology(_int_args(spec, argument, 1)[0])
    if family == "hierarchy":
        branching, levels = _int_args(spec, argument, 2)
        return HierarchicalTopology.uniform(branching, levels)
    if family == "tree":
        branching, depth = _int_args(spec, argument, 2)
        return TreeTopology.balanced(branching, depth)
    raise ValueError(f"unknown topology family {family!r} in {spec!r}")


#: Topology-specific strategies: name -> (required topology class, factory).
_TOPOLOGY_STRATEGIES = {
    "manhattan": (ManhattanTopology, ManhattanStrategy),
    "hypercube": (HypercubeTopology, HypercubeStrategy),
    "ccc": (CubeConnectedCyclesTopology, CubeConnectedCyclesStrategy),
    "projective": (ProjectivePlaneTopology, ProjectivePlaneStrategy),
    "hierarchy": (HierarchicalTopology, HierarchicalGatewayStrategy),
    "tree": (TreeTopology, TreePathStrategy),
}


def strategy_names() -> List[str]:
    """Every strategy name :func:`build_strategy` accepts."""
    return sorted(
        set(default_registry().names()) | set(_TOPOLOGY_STRATEGIES) | {"subgraph"}
    )


def build_strategy(name: str, topology: Topology) -> MatchMakingStrategy:
    """Instantiate a strategy by name for ``topology``.

    Universe-based strategies come from the default registry; the
    topology-specific section-3 strategies require a matching topology and
    ``"subgraph"`` works on any connected graph via the O(sqrt n)
    decomposition.
    """
    name = name.strip().lower()
    if name in _TOPOLOGY_STRATEGIES:
        required, factory = _TOPOLOGY_STRATEGIES[name]
        if not isinstance(topology, required):
            raise StrategyError(
                f"strategy {name!r} requires a {required.__name__}, "
                f"got {type(topology).__name__}"
            )
        return factory(topology)
    if name == "subgraph":
        return SubgraphDecompositionStrategy(decompose(topology.graph))
    registry = default_registry()
    if name not in registry.names():
        raise StrategyError(
            f"unknown strategy {name!r}; known: {', '.join(strategy_names())}"
        )
    return registry.create(name, topology.nodes())


def build_fault_timeline(
    regime: FaultRegimeSpec,
    graph: Graph,
    rng: random.Random,
    protected: Iterable[Hashable] = (),
) -> FaultTimeline:
    """Materialize a declarative fault regime against a concrete graph.

    All random choices (which nodes a wave fells, which links flap, where a
    partition sits) come from ``rng``, so the same regime + seed yields the
    same timeline.  ``protected`` nodes — client hosts, whose death would
    abort the request stream — are never crashed; links around them may
    still fail, which only costs availability.
    """
    if regime.kind == "none":
        return FaultTimeline()
    if regime.kind == "waves":
        return crash_recover_waves(
            graph, rng,
            waves=regime.events, wave_size=regime.size,
            start=regime.start, period=regime.period,
            downtime=regime.downtime, protected=protected,
        )
    if regime.kind == "flaps":
        return link_flaps(
            graph, rng,
            flaps=regime.events, start=regime.start,
            period=regime.period, downtime=regime.downtime,
        )
    if regime.kind == "partition":
        timeline = FaultTimeline()
        for event in range(regime.events):
            at = regime.start + event * regime.period
            timeline = timeline.merged(region_partition(
                graph, rng,
                at=at, heal_at=at + regime.downtime,
                region_size=regime.size,
            ))
        return timeline
    if regime.kind == "correlated":
        return correlated_failures(
            graph, rng,
            shots=regime.events, start=regime.start,
            period=regime.period, downtime=regime.downtime,
            blast_radius=regime.size, protected=protected,
        )
    raise ValueError(f"unknown fault regime kind {regime.kind!r}")
