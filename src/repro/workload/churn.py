"""Churn models: how the server population shifts while traffic flows.

The paper's motivating system is in constant flux — "server processes can
migrate", nodes crash and recover, and cached rendezvous information decays.
A churn model turns a :class:`~repro.workload.spec.ChurnSpec` into a
deterministic schedule of abstract :class:`ChurnEvent`\\ s (a Poisson process
over the scenario's simulated duration).  The workload driver resolves each
abstract event against live system state — *which* server migrates *where*
— and records the resolution in the trace, so replays are exact.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import List, Sequence

from .spec import ChurnSpec

#: Abstract churn event kinds.
MIGRATE = "migrate"
FAILOVER = "failover"
STORM = "storm"


@dataclass(frozen=True)
class ChurnEvent:
    """One scheduled churn event (not yet resolved to concrete targets)."""

    time: float
    kind: str


class ChurnModel(abc.ABC):
    """Base class: a reproducible churn event schedule."""

    kind = "churn"

    @abc.abstractmethod
    def schedule(self, rng: random.Random, horizon: float) -> List[ChurnEvent]:
        """All churn events in ``[0, horizon)``, in time order."""


class NoChurn(ChurnModel):
    """A static system: no churn at all."""

    kind = "none"

    def schedule(self, rng: random.Random, horizon: float) -> List[ChurnEvent]:
        return []


class PoissonChurn(ChurnModel):
    """Churn events as a Poisson process at ``rate`` events/second, each
    event's kind drawn from ``kinds`` (uniformly, one rng draw per event)."""

    def __init__(self, rate: float, kinds: Sequence[str]) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if not kinds:
            raise ValueError("need at least one event kind")
        self._rate = rate
        self._kinds = tuple(kinds)

    def schedule(self, rng: random.Random, horizon: float) -> List[ChurnEvent]:
        events: List[ChurnEvent] = []
        now = rng.expovariate(self._rate)
        while now < horizon:
            kind = self._kinds[0] if len(self._kinds) == 1 else rng.choice(self._kinds)
            events.append(ChurnEvent(time=now, kind=kind))
            now += rng.expovariate(self._rate)
        return events

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(rate={self._rate}, kinds={self._kinds})"


class MigrationChurn(PoissonChurn):
    """Servers migrate between nodes (paper section 1.3)."""

    kind = "migration"

    def __init__(self, rate: float) -> None:
        super().__init__(rate, (MIGRATE,))


class FailoverChurn(PoissonChurn):
    """Server-hosting nodes crash (and later recover); servers respawn
    elsewhere, exercising the freshest-posting-wins path."""

    kind = "failover"

    def __init__(self, rate: float) -> None:
        super().__init__(rate, (FAILOVER,))


class StormChurn(PoissonChurn):
    """Cache-invalidation storms: rendezvous caches wiped en masse."""

    kind = "storm"

    def __init__(self, rate: float) -> None:
        super().__init__(rate, (STORM,))


class MixedChurn(PoissonChurn):
    """All three churn kinds, drawn uniformly per event."""

    kind = "mixed"

    def __init__(self, rate: float) -> None:
        super().__init__(rate, (MIGRATE, FAILOVER, STORM))


def from_spec(spec: ChurnSpec) -> ChurnModel:
    """Build the churn model a :class:`ChurnSpec` describes."""
    if spec.kind == "none":
        return NoChurn()
    if spec.kind == "migration":
        return MigrationChurn(spec.rate)
    if spec.kind == "failover":
        return FailoverChurn(spec.rate)
    if spec.kind == "storm":
        return StormChurn(spec.rate)
    if spec.kind == "mixed":
        return MixedChurn(spec.rate)
    raise ValueError(f"unknown churn kind {spec.kind!r}")
