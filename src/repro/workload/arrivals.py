"""Arrival processes: when requests enter the system and from which client.

An arrival process turns a :class:`~repro.workload.spec.ArrivalSpec` into a
deterministic stream of ``(time, client_index)`` pairs, given a seeded
random generator.  Times are simulated seconds on the same clock the churn
models use, so traffic and churn interleave reproducibly.
"""

from __future__ import annotations

import abc
import random
from typing import Iterator, Tuple

from .spec import ArrivalSpec

#: Minimum simulated duration of one closed-loop round; keeps time advancing
#: (so hotspots move and churn fires) even with zero think time.
_MIN_ROUND = 1e-3


class ArrivalProcess(abc.ABC):
    """Base class: a reproducible stream of request arrivals."""

    kind = "arrival"

    @abc.abstractmethod
    def arrivals(
        self, rng: random.Random, operations: int, clients: int
    ) -> Iterator[Tuple[float, int]]:
        """Yield ``operations`` pairs of ``(time, client_index)``.

        Times are non-decreasing; client indices lie in ``range(clients)``.
        """


class ClosedLoopArrivals(ArrivalProcess):
    """A closed loop: every client keeps exactly one request in flight.

    Requests complete instantaneously in the simulator, so a closed loop of
    ``k`` clients is a round-robin over the clients with one round per
    ``think_time`` (at least :data:`_MIN_ROUND`) seconds.
    """

    kind = "closed"

    def __init__(self, think_time: float = 0.0) -> None:
        if think_time < 0:
            raise ValueError("think_time must be non-negative")
        self._round_length = max(think_time, _MIN_ROUND)

    def arrivals(
        self, rng: random.Random, operations: int, clients: int
    ) -> Iterator[Tuple[float, int]]:
        for op in range(operations):
            yield (op // clients) * self._round_length, op % clients

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ClosedLoopArrivals(round={self._round_length})"


class PoissonArrivals(ArrivalProcess):
    """An open-loop Poisson stream: exponential inter-arrival times at
    ``rate`` requests/second, each request from a uniformly random client."""

    kind = "poisson"

    def __init__(self, rate: float) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        self._rate = rate

    def arrivals(
        self, rng: random.Random, operations: int, clients: int
    ) -> Iterator[Tuple[float, int]]:
        now = 0.0
        for _ in range(operations):
            now += rng.expovariate(self._rate)
            yield now, rng.randrange(clients)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"PoissonArrivals(rate={self._rate})"


class BurstArrivals(ArrivalProcess):
    """Bursty traffic: ``burst_size`` back-to-back requests, then silence.

    All requests of one burst carry the same timestamp (they arrive faster
    than the simulated clock resolves); bursts start ``burst_gap`` seconds
    apart.  Clients are drawn uniformly at random per request.
    """

    kind = "burst"

    def __init__(self, burst_size: int, burst_gap: float) -> None:
        if burst_size < 1:
            raise ValueError("burst_size must be at least 1")
        if burst_gap < 0:
            raise ValueError("burst_gap must be non-negative")
        self._burst_size = burst_size
        self._burst_gap = max(burst_gap, _MIN_ROUND)

    def arrivals(
        self, rng: random.Random, operations: int, clients: int
    ) -> Iterator[Tuple[float, int]]:
        for op in range(operations):
            burst = op // self._burst_size
            yield burst * self._burst_gap, rng.randrange(clients)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"BurstArrivals(size={self._burst_size}, gap={self._burst_gap})"


def from_spec(spec: ArrivalSpec) -> ArrivalProcess:
    """Build the arrival process an :class:`ArrivalSpec` describes."""
    if spec.kind == "closed":
        return ClosedLoopArrivals(think_time=spec.think_time)
    if spec.kind == "poisson":
        return PoissonArrivals(rate=spec.rate)
    if spec.kind == "burst":
        return BurstArrivals(burst_size=spec.burst_size, burst_gap=spec.burst_gap)
    raise ValueError(f"unknown arrival kind {spec.kind!r}")
