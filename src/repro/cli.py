"""The ``python -m repro`` command line: run, sweep, replay — reproducibly.

Five subcommands wrap the workload and execution engines for shell use:

``run spec.json``
    execute one :class:`~repro.workload.spec.ScenarioSpec`, print its
    deterministic result dict as JSON, optionally record the trace;
``matrix grid.json --workers N``
    expand a :class:`~repro.workload.matrix.MatrixSpec` and run it through
    the parallel execution engine (``--workers 0`` = one per CPU), with
    progress/ETA on stderr and the per-cell/per-axis tables on stdout;
``replay trace.jsonl``
    re-execute a recorded trace and, with ``--expect``, verify the replay
    reproduces a previously saved result byte-for-byte;
``obs summarize/diff``
    inspect the observability export a ``--obs DIR`` run wrote: merged
    metric totals, span-derived hop breakdowns, per-worker phase profiles,
    and numeric deltas between two exports;
``analyze [paths...]``
    run the determinism / pickle-safety / digest-neutrality static
    analyzer (:mod:`repro.analysis.static`) over the source tree; new
    findings exit 1, ``--strict`` additionally fails stale baseline
    entries.

Everything machine-readable goes to stdout, progress and notes to stderr,
so ``python -m repro ... > out.json`` composes in pipelines.  Exit status
is 0 on success, 1 on a failed ``--expect`` verification, 2 on bad input.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from .analysis import render_matrix_report
from .analysis.static import (
    AnalysisError,
    analyze_paths,
    load_baseline,
    render_findings,
    rule_table,
    session_dict,
    write_baseline,
)
from .core.exceptions import MatchMakingError
from .exec.progress import ProgressReporter
from .obs import (
    SpanRecorder,
    cell_span_path,
    dump_metrics_line,
    export_dir,
    metrics_path,
)
from .obs.export import timeline_path, write_timelines
from .obs.tools import (
    diff_exports,
    render_diff,
    render_summary,
    summarize_export,
)
from .workload import (
    MatrixSpec,
    ScenarioSpec,
    Trace,
    replay_trace,
    run_matrix,
    run_scenario,
)


def _load_json(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as fp:
        return json.load(fp)


def _emit(data: dict) -> None:
    json.dump(data, sys.stdout, indent=2, sort_keys=True)
    sys.stdout.write("\n")


def _note(message: str) -> None:
    sys.stderr.write(message + "\n")


# -- subcommands -------------------------------------------------------------------

def _cmd_run(args: argparse.Namespace) -> int:
    spec = ScenarioSpec.from_dict(_load_json(args.spec))
    if getattr(args, "time_model", None):
        from dataclasses import replace as _replace

        from .simtime import TimeModelSpec

        spec = _replace(
            spec, time_model=TimeModelSpec.from_dict(_load_json(args.time_model))
        )
    tracer = SpanRecorder() if args.obs else None
    result = run_scenario(spec, tracer=tracer)
    if args.obs:
        obs_path = export_dir(args.obs)
        tracer.to_path(cell_span_path(obs_path, 0))
        with open(metrics_path(obs_path), "w", encoding="utf-8") as fp:
            fp.write(dump_metrics_line(
                0,
                {
                    "name": spec.name,
                    "topology": spec.topology,
                    "strategy": spec.strategy,
                },
                result.metrics.registry,
            ))
        if result.exemplars:
            write_timelines(timeline_path(obs_path, 0), result.exemplars)
        _note(f"observability export ({len(tracer)} spans) -> {args.obs}")
    if args.trace:
        result.trace.to_path(args.trace)
        _note(f"trace ({len(result.trace)} ops) -> {args.trace}")
    if args.out:
        with open(args.out, "w", encoding="utf-8") as fp:
            json.dump(result.to_dict(), fp, indent=2, sort_keys=True)
            fp.write("\n")
        _note(f"result -> {args.out}")
    _emit(result.to_dict())
    return 0


def _cmd_matrix(args: argparse.Namespace) -> int:
    matrix = MatrixSpec.from_dict(_load_json(args.spec))
    if args.repeat < 1:
        raise ValueError(f"--repeat must be >= 1, got {args.repeat}")
    cache_dir = None if args.no_cache else args.cache_dir
    pool = None
    report = None
    try:
        if args.repeat > 1 and args.workers != 1:
            from .exec.pool import WarmPool

            pool = WarmPool(args.workers)
        for iteration in range(args.repeat):
            progress = None if args.no_progress else ProgressReporter()
            report, _ = run_matrix(
                matrix,
                workers=args.workers,
                progress=progress,
                trace_dir=args.traces,
                keep_results=False,
                obs_dir=args.obs,
                profile=args.profile,
                cache_dir=cache_dir,
                pool=pool,
            )
            stats = report.cache_stats
            if stats is not None:
                _note("cache: " + "  ".join(
                    f"{key}={stats[key]}" for key in sorted(stats)
                ))
            if args.repeat > 1:
                _note(
                    f"run {iteration + 1}/{args.repeat}: "
                    f"digest {report.digest()}"
                )
    finally:
        if pool is not None:
            pool.close()
    if args.traces:
        _note(f"cell traces -> {args.traces}")
    if args.obs:
        _note(f"observability export -> {args.obs}")
    if args.report:
        report.to_path(args.report)
        _note(f"report -> {args.report}")
    if args.digest:
        print(report.digest())
        return 0
    print(render_matrix_report(report))
    return 0


def _cmd_obs(args: argparse.Namespace) -> int:
    from .obs.attr import (
        attribute_export,
        diff_attribution,
        render_attribution,
        render_attribution_diff,
    )

    if args.obs_command == "summarize":
        summary = summarize_export(args.dir)
        if args.json:
            _emit(summary)
        else:
            print(render_summary(summary))
        return 0
    if args.obs_command == "attribute":
        attribution = attribute_export(args.dir, top=args.top)
        if args.json:
            _emit(attribution)
        else:
            print(render_attribution(attribution))
        return 0
    if getattr(args, "attribute", False):
        diff = diff_attribution(args.dir_a, args.dir_b, top=args.top)
        if args.json:
            _emit(diff)
        else:
            print(render_attribution_diff(diff))
        return 0
    diff = diff_exports(args.dir_a, args.dir_b)
    if args.json:
        _emit(diff)
    else:
        print(render_diff(
            diff,
            before=summarize_export(args.dir_a),
            after=summarize_export(args.dir_b),
        ))
    return 0


def _cmd_analyze(args: argparse.Namespace) -> int:
    if args.list_rules:
        for row in rule_table():
            print(f"{row['id']}  {row['title']}")
            print(f"        {row['description']}")
        return 0
    paths = [Path(p) for p in args.paths] if args.paths \
        else [Path(__file__).resolve().parent]
    baseline = load_baseline(Path(args.baseline)) if args.baseline else {}
    session = analyze_paths(paths, baseline=baseline)
    if args.write_baseline:
        write_baseline(Path(args.write_baseline), session)
        _note(
            f"baseline ({len(session.findings)} finding(s)) -> "
            f"{args.write_baseline}"
        )
    if args.json:
        _emit(session_dict(session))
    else:
        print(render_findings(session, verbose=args.verbose))
    failed = bool(session.new) or \
        (args.strict and bool(session.stale_baseline))
    return 1 if failed else 0


def _cmd_replay(args: argparse.Namespace) -> int:
    trace = Trace.from_path(args.trace)
    result = replay_trace(trace)
    _emit(result.to_dict())
    if args.expect:
        expected = _load_json(args.expect)
        if json.dumps(result.to_dict(), sort_keys=True) == \
                json.dumps(expected, sort_keys=True):
            _note("replay matches the expected result byte-for-byte")
            return 0
        _note("replay DIVERGED from the expected result")
        return 1
    return 0


# -- entry point -------------------------------------------------------------------

def build_parser() -> argparse.ArgumentParser:
    """The full CLI parser (exposed for tests and ``--help`` rendering)."""
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Run, sweep and replay match-making workloads.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run_p = sub.add_parser(
        "run", help="run one scenario spec (JSON) and print its result"
    )
    run_p.add_argument("spec", help="path to a ScenarioSpec JSON file")
    run_p.add_argument(
        "--trace", metavar="PATH",
        help="record the run's trace as replayable JSONL",
    )
    run_p.add_argument(
        "--out", metavar="PATH", help="also write the result dict to PATH"
    )
    run_p.add_argument(
        "--obs", metavar="DIR",
        help="write the run's span tree and metrics registry under DIR",
    )
    run_p.add_argument(
        "--time-model", metavar="PATH",
        help="attach a TimeModelSpec (JSON) so the run prices messages on "
        "the virtual clock and reports latency percentiles",
    )
    run_p.set_defaults(handler=_cmd_run)

    matrix_p = sub.add_parser(
        "matrix", help="run a scenario-matrix grid (JSON), optionally sharded"
    )
    matrix_p.add_argument("spec", help="path to a MatrixSpec JSON file")
    matrix_p.add_argument(
        "--workers", type=int, default=1, metavar="N",
        help="worker processes (1 = sequential, 0 = one per CPU; default 1)",
    )
    matrix_p.add_argument(
        "--report", metavar="PATH", help="write the MatrixReport JSON to PATH"
    )
    matrix_p.add_argument(
        "--traces", metavar="DIR",
        help="spool every cell's trace as DIR/cell-NNNN.jsonl",
    )
    matrix_p.add_argument(
        "--digest", action="store_true",
        help="print only the report's canonical SHA-256 digest",
    )
    matrix_p.add_argument(
        "--no-progress", action="store_true",
        help="suppress the progress/ETA line on stderr",
    )
    matrix_p.add_argument(
        "--obs", metavar="DIR",
        help="write per-cell span trees and metrics (JSONL) under DIR",
    )
    matrix_p.add_argument(
        "--profile", action="store_true",
        help="time run phases (wall clock) and add a profile section to "
             "the report — never part of the digest",
    )
    matrix_p.add_argument(
        "--cache-dir", metavar="DIR",
        help="content-addressed cell cache: serve unchanged cells from DIR "
             "instead of executing them, and store every executed cell — "
             "the report digest is identical either way",
    )
    matrix_p.add_argument(
        "--no-cache", action="store_true",
        help="ignore --cache-dir (one-shot escape hatch for scripted runs)",
    )
    matrix_p.add_argument(
        "--repeat", type=int, default=1, metavar="N",
        help="run the grid N times in one process (with --workers != 1 a "
             "warm pool keeps worker processes and their networks alive "
             "between runs); prints each run's digest on stderr",
    )
    matrix_p.set_defaults(handler=_cmd_matrix)

    obs_p = sub.add_parser(
        "obs", help="inspect an observability export written with --obs"
    )
    obs_sub = obs_p.add_subparsers(dest="obs_command", required=True)
    summarize_p = obs_sub.add_parser(
        "summarize",
        help="merged metric totals, span hop breakdowns, phase profiles",
    )
    summarize_p.add_argument("dir", help="export directory (from --obs)")
    summarize_p.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    summarize_p.set_defaults(handler=_cmd_obs)
    attribute_p = obs_sub.add_parser(
        "attribute",
        help="rank critical-path contributors of a timed export — which "
             "queue/link/service segment carries the tail latency",
    )
    attribute_p.add_argument("dir", help="export directory (from --obs)")
    attribute_p.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="contributor rows to keep per section (default 10)",
    )
    attribute_p.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    attribute_p.set_defaults(handler=_cmd_obs)
    diff_p = obs_sub.add_parser(
        "diff", help="numeric metric/span deltas between two exports (b - a)"
    )
    diff_p.add_argument("dir_a", help="baseline export directory")
    diff_p.add_argument("dir_b", help="comparison export directory")
    diff_p.add_argument(
        "--attribute", action="store_true",
        help="explain the delta as ranked critical-path contributor "
             "changes instead of raw metric/span deltas (timed exports)",
    )
    diff_p.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="contributor rows with --attribute (default 10)",
    )
    diff_p.add_argument(
        "--json", action="store_true", help="emit JSON instead of text"
    )
    diff_p.set_defaults(handler=_cmd_obs)

    analyze_p = sub.add_parser(
        "analyze",
        help="static determinism / pickle-safety / digest-neutrality checks",
    )
    analyze_p.add_argument(
        "paths", nargs="*",
        help="files or directories to analyze (default: the repro package)",
    )
    analyze_p.add_argument(
        "--baseline", metavar="PATH",
        help="committed baseline JSON; findings it fingerprints don't fail "
             "the gate",
    )
    analyze_p.add_argument(
        "--write-baseline", metavar="PATH",
        help="write the current findings as a new baseline to PATH",
    )
    analyze_p.add_argument(
        "--strict", action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    analyze_p.add_argument(
        "--json", action="store_true",
        help="emit the full machine-readable session instead of text",
    )
    analyze_p.add_argument(
        "--verbose", action="store_true",
        help="also list findings suppressed by pragmas (with reasons)",
    )
    analyze_p.add_argument(
        "--list-rules", action="store_true",
        help="print the rule catalog and exit",
    )
    analyze_p.set_defaults(handler=_cmd_analyze)

    replay_p = sub.add_parser(
        "replay", help="re-execute a recorded trace (JSONL)"
    )
    replay_p.add_argument("trace", help="path to a trace .jsonl file")
    replay_p.add_argument(
        "--expect", metavar="PATH",
        help="result dict JSON the replay must reproduce byte-for-byte",
    )
    replay_p.set_defaults(handler=_cmd_replay)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit status."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (
        OSError, ValueError, KeyError, TypeError, MatchMakingError,
        AnalysisError,
    ) as error:
        # Bad input of any shape — unreadable file, malformed JSON, spec
        # validation, unknown strategy/topology — is exit 2, never a
        # traceback; exit 1 stays reserved for --expect divergence.
        _note(f"error: {error}")
        return 2
